#include "src/tokens/token_manager.h"

#include <algorithm>
#include <utility>

namespace dfs {

namespace {
// Mixes volume ids (often small and sequential) into shard indices.
uint64_t MixVolume(uint64_t volume) {
  volume ^= volume >> 33;
  volume *= 0xff51afd7ed558ccdULL;
  volume ^= volume >> 33;
  return volume;
}
}  // namespace

// Builds a fresh n-shard table. Tags 1..n: a thread only ever holds one shard
// lock, but distinct tags keep the hierarchy diagnostics unambiguous.
std::shared_ptr<TokenManager::ShardVec> TokenManager::MakeTable(size_t n) {
  auto table = std::make_shared<ShardVec>();
  table->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    table->push_back(std::make_unique<Shard>(i + 1));
  }
  return table;
}

TokenManager::TokenManager(const Options& options) : options_(options) {
  // shards == 0 arms autotuning and starts at the historical default of 8;
  // the table is resized once, from the volume count, at export time.
  table_ = MakeTable(options_.shards == 0 ? 8 : options_.shards);
  autotune_armed_.store(options_.shards == 0, std::memory_order_release);
}

TokenManager::~TokenManager() = default;

TokenManager::Shard& TokenManager::ShardFor(const ShardVec& table, uint64_t volume) {
  return *table[MixVolume(volume) % table.size()];
}

// Dynamic all-shard acquisition is beyond the static analysis (the lock set
// is a runtime loop); the OrderedMutex runtime checker still validates the
// tag-ordered acquisitions.
void TokenManager::AutotuneShards(size_t volume_count) NO_THREAD_SAFETY_ANALYSIS {
  // First caller wins; later aggregates (and explicit shard counts, which
  // never arm) leave the table alone.
  if (!autotune_armed_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  size_t desired = 1;
  while (desired < volume_count && desired < 64) {
    desired *= 2;
  }
  auto current = SnapshotTable();
  if (desired == current->size()) {
    return;
  }
  auto next = MakeTable(desired);
  // Resizing rehashes every volume->shard assignment, so it is only legal
  // while no tokens exist — and the check must be atomic with the swap.
  // Hold EVERY shard lock (legal at one level: tags 1..n acquired in order)
  // across emptiness check, retirement and publish. A racing Grant/Reassert
  // on the old snapshot either minted before we took its shard lock (some
  // shard is non-empty — keep the current table) or is still waiting on it
  // and will find the shard retired, re-snapshotting the live table before
  // minting. Releasing a shard between check and publish would let a grant
  // mint a token into the discarded table, invisible to Return/Revoke.
  bool empty = true;
  size_t locked = 0;
  for (; locked < current->size(); ++locked) {
    (*current)[locked]->Lock();
    if (!(*current)[locked]->tokens.empty()) {
      ++locked;  // this shard's lock is held too; unwind it below
      empty = false;
      break;
    }
  }
  if (empty) {
    for (const auto& shard : *current) {
      shard->retired = true;
    }
    // table_mu_ is a leaf: taking it under the shard locks is the one legal
    // nesting direction.
    MutexLock lock(table_mu_);
    table_ = std::move(next);
  }
  for (size_t i = locked; i-- > 0;) {
    (*current)[i]->Unlock();
  }
}

void TokenManager::RegisterHost(HostId host, TokenHost* handler) {
  SharedOrderedLockGuard lock(host_mu_);
  hosts_[host] = handler;
}

void TokenManager::UnregisterHost(HostId host) {
  {
    SharedOrderedLockGuard lock(host_mu_);
    hosts_.erase(host);
  }
  // Per-shard cleanup after the registry lock is released: kTokenShard sits
  // below kHostRegistry in the hierarchy, so the two are never nested this
  // way around.
  auto table = SnapshotTable();
  for (const auto& shard : *table) {
    ShardGuard lock(*shard);
    for (auto it = shard->tokens.begin(); it != shard->tokens.end();) {
      if (it->second.host == host) {
        auto vit = shard->by_volume.find(it->second.fid.volume);
        if (vit != shard->by_volume.end()) {
          auto& vec = vit->second;
          vec.erase(std::remove(vec.begin(), vec.end(), it->first), vec.end());
          if (vec.empty()) {
            shard->by_volume.erase(vit);
          }
        }
        it = shard->tokens.erase(it);
      } else {
        ++it;
      }
    }
    shard->returned_cv.notify_all();
  }
}

std::vector<std::pair<Token, uint32_t>> TokenManager::ConflictsLocked(
    const Shard& shard, HostId host, const Fid& fid, uint32_t types,
    const ByteRange& range) const {
  std::vector<std::pair<Token, uint32_t>> conflicts;
  auto vit = shard.by_volume.find(fid.volume);
  if (vit == shard.by_volume.end()) {
    return conflicts;
  }
  for (TokenId id : vit->second) {
    auto tit = shard.tokens.find(id);
    if (tit == shard.tokens.end()) {
      continue;
    }
    const Token& t = tit->second;
    if (t.host == host) {
      continue;  // a host never conflicts with itself
    }
    bool same_file = (t.fid == fid);
    bool volume_scope = (t.types & kTokenWholeVolume) || (types & kTokenWholeVolume);
    if (!same_file && !volume_scope) {
      continue;
    }
    // Only the conflicting *types* of the token need revoking; the holder
    // keeps the rest (e.g. byte-range data tokens survive a status handoff).
    uint32_t conflicting = ConflictingTypes(t.types, t.range, types, range);
    if (conflicting != 0) {
      conflicts.push_back({t, conflicting});
    }
  }
  return conflicts;
}

bool TokenManager::RelinquishedLocked(const Shard& shard, TokenId id, uint32_t types) const {
  auto it = shard.tokens.find(id);
  return it == shard.tokens.end() || (it->second.types & types) == 0;
}

void TokenManager::EraseTokenTypesLocked(Shard& shard, TokenId id, uint32_t types) {
  auto it = shard.tokens.find(id);
  if (it == shard.tokens.end()) {
    return;
  }
  it->second.types &= ~types;
  if (it->second.types == 0) {
    auto vit = shard.by_volume.find(it->second.fid.volume);
    if (vit != shard.by_volume.end()) {
      auto& vec = vit->second;
      vec.erase(std::remove(vec.begin(), vec.end(), id), vec.end());
      if (vec.empty()) {
        // Prune the emptied volume entry: volumes come and go (clones, moves,
        // tests churning fids), and an entry per volume ever seen would grow
        // without bound.
        shard.by_volume.erase(vit);
      }
    }
    shard.tokens.erase(it);
  }
}

TokenManager::IssueResult TokenManager::IssueRevokes(std::vector<RevokeOutcome>& outcomes) {
  IssueResult result;
  // Group the round's outcomes by holder host: every host gets exactly one
  // callback — Revoke for a single token, RevokeBatch (one RPC on the wire)
  // when several of its tokens conflict at once. Groups hold indices into
  // `outcomes`, so statuses land back in their slots.
  std::vector<std::pair<TokenHost*, std::vector<size_t>>> groups;
  std::unordered_map<HostId, size_t> group_of;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    auto [it, inserted] = group_of.emplace(outcomes[i].token.host, groups.size());
    if (inserted) {
      groups.push_back({outcomes[i].handler, {}});
    }
    groups[it->second].second.push_back(i);
  }
  for (const auto& [handler, idx] : groups) {
    if (handler != nullptr && idx.size() >= 2) {
      result.host_batches += 1;
    }
  }

  auto run_group = [&outcomes](TokenHost* handler, const std::vector<size_t>& idx) {
    std::string holder = handler != nullptr ? handler->name() : "unknown";
    for (size_t i : idx) {
      outcomes[i].holder = holder;
    }
    if (handler == nullptr) {  // host gone or lease lapsed: drop its tokens
      for (size_t i : idx) {
        outcomes[i].status = Status::Ok();
      }
      return;
    }
    if (idx.size() == 1) {
      RevokeOutcome& o = outcomes[idx[0]];
      o.status = handler->Revoke(o.token, o.types);
      return;
    }
    std::vector<TokenHost::RevokeItem> items;
    items.reserve(idx.size());
    for (size_t i : idx) {
      items.push_back({outcomes[i].token, outcomes[i].types});
    }
    std::vector<Status> statuses = handler->RevokeBatch(items);
    for (size_t k = 0; k < idx.size(); ++k) {
      outcomes[idx[k]].status =
          k < statuses.size() ? statuses[k]
                              : Status(ErrorCode::kInternal, "short RevokeBatch reply");
    }
  };

  if (options_.revoke_fanout_threads == 0 || groups.size() < 2) {
    for (const auto& [handler, idx] : groups) {
      run_group(handler, idx);
    }
    return result;
  }
  ThreadPool* pool = nullptr;
  {
    MutexLock lock(pool_mu_);
    if (revoke_pool_ == nullptr) {
      revoke_pool_ =
          std::make_unique<ThreadPool>(options_.revoke_fanout_threads, "revoke-fanout");
    }
    pool = revoke_pool_.get();
  }
  // Batch-completion latch. Workers only touch their own group's outcome
  // slots, so the latch is the sole shared state.
  // LOCK-EXEMPT(leaf): batch-local latch; never held across any other lock.
  Mutex done_mu;
  CondVar done_cv;
  size_t pending = groups.size();
  for (auto& [handler, idx] : groups) {
    bool submitted =
        pool->Submit([handler = handler, &idx, &run_group, &done_mu, &done_cv, &pending] {
          run_group(handler, idx);
          MutexLock lock(done_mu);
          --pending;
          done_cv.NotifyOne();
        });
    if (!submitted) {  // pool shutting down: fall back inline
      run_group(handler, idx);
      MutexLock lock(done_mu);
      --pending;
    }
  }
  UniqueMutexLock lock(done_mu);
  while (pending > 0) {
    done_cv.Wait(lock);
  }
  result.used_pool = true;
  return result;
}

Status TokenManager::RevokeConflicts(Shard& shard,
                                     std::vector<std::pair<Token, uint32_t>> conflicts) {
  // Re-filter under the shard lock (another grant's revocations may have
  // already cleared some), then resolve handlers. The registry read nests
  // inside the shard lock: kHostRegistry > kTokenShard.
  std::vector<RevokeOutcome> outcomes;
  outcomes.reserve(conflicts.size());
  {
    ShardGuard lock(shard);
    SharedOrderedReadGuard hosts_lock(host_mu_);
    for (auto& [conflict, conflicting_types] : conflicts) {
      auto tit = shard.tokens.find(conflict.id);
      if (tit == shard.tokens.end() || (tit->second.types & conflicting_types) == 0) {
        continue;  // already relinquished by someone else's revocation
      }
      RevokeOutcome o;
      o.token = conflict;
      o.types = conflicting_types;
      auto hit = hosts_.find(conflict.host);
      o.handler = (hit != hosts_.end()) ? hit->second : nullptr;
      if (o.handler != nullptr && options_.host_silent && options_.host_silent(conflict.host)) {
        // The holder's lease lapsed: garbage-collect its token instead of
        // waiting on a callback it will never answer (the paper's token
        // lifetimes; Lustre's eviction).
        o.handler = nullptr;
        shard.stats.lease_expired_drops += 1;
      }
      outcomes.push_back(std::move(o));
    }
  }
  if (outcomes.empty()) {
    return Status::Ok();  // nothing left to do: caller re-scans
  }

  // Issue every Revoke with no shard lock held: each may be a blocking RPC
  // whose handler calls back into this manager.
  IssueResult issued = IssueRevokes(outcomes);

  // Merge. All callbacks have completed, so relinquished tokens are erased
  // even when some other holder refused — their holders already gave them up.
  std::vector<std::pair<TokenId, uint32_t>> deferred;
  Status refusal = Status::Ok();
  {
    ShardGuard lock(shard);
    shard.stats.revocations += outcomes.size();
    if (issued.used_pool) {
      shard.stats.fanout_batches += 1;
    }
    shard.stats.host_batches += issued.host_batches;
    bool erased_any = false;
    for (const auto& o : outcomes) {
      if (o.status.ok()) {
        EraseTokenTypesLocked(shard, o.token.id, o.types);
        erased_any = true;
      } else if (o.status.code() == ErrorCode::kWouldBlock) {
        // Deferred: the holder will call Return() once its in-flight RPC
        // completes (Section 6.3's queued-revocation case).
        shard.stats.deferred_returns += 1;
        deferred.push_back({o.token.id, o.types});
      } else {
        shard.stats.refusals += 1;
        if (refusal.ok()) {
          refusal = Status(ErrorCode::kConflict,
                           "token held by " + o.holder +
                               " was not relinquished: " + TokenTypesToString(o.types));
        }
      }
    }
    if (erased_any) {
      shard.returned_cv.notify_all();
    }
  }
  // A refusal fails the grant outright — don't burn the deferred-return
  // timeout waiting for returns that can no longer help.
  if (!refusal.ok()) {
    return refusal;
  }

  if (!deferred.empty()) {
    // One shared deadline for the whole round: the deferrals were issued
    // together, so they time out together — N deferring holders cost one
    // timeout budget, not N.
    auto deadline = std::chrono::steady_clock::now() + options_.deferred_return_timeout;
    // Counted by hand: the condvar wait needs the raw OrderedUniqueLock, not
    // the counting ShardGuard.
    shard.lock_acquisitions.fetch_add(1, std::memory_order_relaxed);
    OrderedUniqueLock lock(shard.mu);
    for (;;) {
      bool all = true;
      for (const auto& [id, types] : deferred) {
        if (!RelinquishedLocked(shard, id, types)) {
          all = false;
          break;
        }
      }
      if (all) {
        break;
      }
      if (shard.returned_cv.wait_until(lock, deadline) == std::cv_status::timeout) {
        bool relinquished = true;
        for (const auto& [id, types] : deferred) {
          if (!RelinquishedLocked(shard, id, types)) {
            relinquished = false;
            break;
          }
        }
        if (!relinquished) {
          return Status(ErrorCode::kTimedOut, "deferred token return never arrived");
        }
        break;
      }
    }
  }
  return Status::Ok();
}

Result<Token> TokenManager::Grant(HostId host, const Fid& fid, uint32_t types,
                                  ByteRange range) {
  // One table snapshot for the whole retry loop: every round's scan, erase
  // and mint land in the same shard object. The one exception: finding the
  // shard retired means the pre-traffic autotune resize swapped the table
  // while we waited on the lock — minting here would hand out a token
  // invisible to Return/Revoke/HasToken on the live table, so refresh the
  // snapshot instead (retirement is one-shot, the outer loop runs at most
  // twice).
  for (;;) {
    auto table = SnapshotTable();
    Shard& shard = ShardFor(*table, fid.volume);
    bool retired = false;
    for (int round = 0; round < 64; ++round) {
      std::vector<std::pair<Token, uint32_t>> conflicts;
      {
        ShardGuard lock(shard);
        if (shard.retired) {
          retired = true;
          break;
        }
        conflicts = ConflictsLocked(shard, host, fid, types, range);
        if (!conflicts.empty() && options_.host_silent) {
          // Lease fast path: when *every* conflicting holder's lease has
          // already lapsed, their tokens are garbage — reap them under the
          // scan's own lock hold and mint immediately, skipping the
          // revocation fan-out round (and its handler resolution) entirely.
          bool all_silent = true;
          for (const auto& [conflict, conflicting_types] : conflicts) {
            if (!options_.host_silent(conflict.host)) {
              all_silent = false;
              break;
            }
          }
          if (all_silent) {
            for (const auto& [conflict, conflicting_types] : conflicts) {
              EraseTokenTypesLocked(shard, conflict.id, conflicting_types);
              shard.stats.lease_expired_drops += 1;
            }
            shard.stats.lease_fast_path_grants += 1;
            shard.returned_cv.notify_all();
            conflicts.clear();
          }
        }
        if (conflicts.empty()) {
          Token token;
          token.id = next_id_.fetch_add(1, std::memory_order_relaxed);
          token.fid = fid;
          token.types = types;
          token.range = range;
          token.host = host;
          shard.tokens.emplace(token.id, token);
          shard.by_volume[fid.volume].push_back(token.id);
          shard.stats.grants += 1;
          return token;
        }
      }
      Status s = RevokeConflicts(shard, std::move(conflicts));
      if (!s.ok()) {
        return s;
      }
      // Loop: re-scan. New conflicting grants may have slipped in.
    }
    if (!retired) {
      return Status(ErrorCode::kTimedOut,
                    "grant retry limit exceeded (revocation livelock)");
    }
    // Retired: start over on the refreshed snapshot.
  }
}

Status TokenManager::Reassert(const Token& token) {
  // Like Grant: a retired shard means the autotune resize swapped the table
  // while we held a stale snapshot — re-snapshot rather than mint into the
  // discarded table (one-shot, so at most one retry).
  for (;;) {
    auto table = SnapshotTable();
    Shard& shard = ShardFor(*table, token.fid.volume);
    ShardGuard lock(shard);
    if (shard.retired) {
      continue;
    }
    return ReassertLocked(shard, token);
  }
}

Status TokenManager::ReassertLocked(Shard& shard, const Token& token) {
  auto it = shard.tokens.find(token.id);
  if (it != shard.tokens.end()) {
    if (it->second.host == token.host && it->second.fid == token.fid) {
      return Status::Ok();  // duplicate reassertion from the same holder
    }
    shard.stats.reassert_conflicts += 1;
    return Status(ErrorCode::kConflict, "token id already in use");
  }
  // First-wins: a conflicting grant (or reassertion) that beat us here keeps
  // its tokens — reassertion never revokes.
  if (!ConflictsLocked(shard, token.host, token.fid, token.types, token.range).empty()) {
    shard.stats.reassert_conflicts += 1;
    return Status(ErrorCode::kConflict, "reassertion lost to a conflicting grant");
  }
  shard.tokens.emplace(token.id, token);
  shard.by_volume[token.fid.volume].push_back(token.id);
  shard.stats.reasserts += 1;
  // Fresh grants must mint ids above every reasserted one.
  TokenId cur = next_id_.load(std::memory_order_relaxed);
  while (cur <= token.id &&
         !next_id_.compare_exchange_weak(cur, token.id + 1, std::memory_order_relaxed)) {
  }
  return Status::Ok();
}

Status TokenManager::Return(TokenId id, uint32_t types) {
  // A TokenId does not encode its volume, so probe shards; grants are the hot
  // path, not returns.
  auto table = SnapshotTable();
  for (const auto& shard : *table) {
    ShardGuard lock(*shard);
    auto it = shard->tokens.find(id);
    if (it == shard->tokens.end()) {
      continue;
    }
    EraseTokenTypesLocked(*shard, id, types);
    shard->returned_cv.notify_all();
    return Status::Ok();
  }
  return Status(ErrorCode::kNotFound, "unknown token");
}

bool TokenManager::HasToken(TokenId id) const {
  auto table = SnapshotTable();
  for (const auto& shard : *table) {
    ShardGuard lock(*shard);
    if (shard->tokens.count(id) != 0) {
      return true;
    }
  }
  return false;
}

std::vector<Token> TokenManager::TokensForFid(const Fid& fid) const {
  auto table = SnapshotTable();
  Shard& shard = ShardFor(*table, fid.volume);
  ShardGuard lock(shard);
  std::vector<Token> out;
  for (const auto& [id, t] : shard.tokens) {
    if (t.fid == fid) {
      out.push_back(t);
    }
  }
  return out;
}

std::vector<Token> TokenManager::TokensForHost(HostId host) const {
  std::vector<Token> out;
  auto table = SnapshotTable();
  for (const auto& shard : *table) {
    ShardGuard lock(*shard);
    for (const auto& [id, t] : shard->tokens) {
      if (t.host == host) {
        out.push_back(t);
      }
    }
  }
  return out;
}

TokenManager::Stats TokenManager::stats() const {
  Stats total;
  auto table = SnapshotTable();
  for (const auto& shard : *table) {
    ShardGuard lock(*shard);
    total.grants += shard->stats.grants;
    total.revocations += shard->stats.revocations;
    total.deferred_returns += shard->stats.deferred_returns;
    total.refusals += shard->stats.refusals;
    total.fanout_batches += shard->stats.fanout_batches;
    total.host_batches += shard->stats.host_batches;
    total.reasserts += shard->stats.reasserts;
    total.reassert_conflicts += shard->stats.reassert_conflicts;
    total.lease_expired_drops += shard->stats.lease_expired_drops;
    total.lease_fast_path_grants += shard->stats.lease_fast_path_grants;
    total.lock_acquisitions += shard->lock_acquisitions.load(std::memory_order_relaxed);
    total.lock_contended += shard->lock_contended.load(std::memory_order_relaxed);
  }
  return total;
}

size_t TokenManager::VolumeIndexEntries() const {
  size_t n = 0;
  auto table = SnapshotTable();
  for (const auto& shard : *table) {
    ShardGuard lock(*shard);
    n += shard->by_volume.size();
  }
  return n;
}

}  // namespace dfs

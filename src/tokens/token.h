// Typed tokens (Section 5): guarantees the file server makes to clients about
// what operations they may perform locally.
//
// Token types and their compatibility rules, straight from Section 5.2:
//  - Data read/write tokens cover a byte range; read vs. write (and write vs.
//    write) conflict only when the ranges overlap.
//  - Status read/write tokens: read vs. write and write vs. write conflict.
//  - Lock read/write tokens cover a byte range, same overlap rule.
//  - Open tokens come in five modes (normal read, normal write, execute,
//    shared read, exclusive write) with the Figure-3 compatibility matrix.
//  - Tokens of different types never conflict (they guard separate components
//    of the file).
//  - A whole-volume token (used by the replication server, Section 3.8)
//    conflicts with any write-class token on any file in the volume.
//
// Tokens held by the same host never conflict with each other: the host's own
// internal locking serializes its operations.
#ifndef SRC_TOKENS_TOKEN_H_
#define SRC_TOKENS_TOKEN_H_

#include <cstdint>
#include <string>

#include "src/common/codec.h"
#include "src/vfs/types.h"

namespace dfs {

using TokenId = uint64_t;
using HostId = uint32_t;

// Token type bits.
inline constexpr uint32_t kTokenDataRead = 1u << 0;
inline constexpr uint32_t kTokenDataWrite = 1u << 1;
inline constexpr uint32_t kTokenStatusRead = 1u << 2;
inline constexpr uint32_t kTokenStatusWrite = 1u << 3;
inline constexpr uint32_t kTokenLockRead = 1u << 4;
inline constexpr uint32_t kTokenLockWrite = 1u << 5;
inline constexpr uint32_t kTokenOpenRead = 1u << 6;
inline constexpr uint32_t kTokenOpenWrite = 1u << 7;
inline constexpr uint32_t kTokenOpenExecute = 1u << 8;
inline constexpr uint32_t kTokenOpenShared = 1u << 9;
inline constexpr uint32_t kTokenOpenExclusive = 1u << 10;
inline constexpr uint32_t kTokenWholeVolume = 1u << 11;

inline constexpr uint32_t kTokenOpenMask = kTokenOpenRead | kTokenOpenWrite |
                                           kTokenOpenExecute | kTokenOpenShared |
                                           kTokenOpenExclusive;
// Types that imply modification; these conflict with whole-volume tokens.
inline constexpr uint32_t kTokenWriteClassMask =
    kTokenDataWrite | kTokenStatusWrite | kTokenLockWrite | kTokenOpenWrite |
    kTokenOpenExclusive;

std::string TokenTypesToString(uint32_t types);

// Half-open byte range [start, end). kMaxRange covers the whole file.
struct ByteRange {
  uint64_t start = 0;
  uint64_t end = UINT64_MAX;

  bool Overlaps(const ByteRange& o) const { return start < o.end && o.start < end; }
  bool Contains(const ByteRange& o) const { return start <= o.start && o.end <= end; }
  bool operator==(const ByteRange&) const = default;

  static ByteRange All() { return ByteRange{0, UINT64_MAX}; }
};

struct Token {
  TokenId id = 0;
  Fid fid;  // for whole-volume tokens: {volume, 0, 0}
  uint32_t types = 0;
  ByteRange range = ByteRange::All();
  HostId host = 0;

  void Serialize(Writer& w) const;
  static Result<Token> Deserialize(Reader& r);
};

// Figure 3: may two different clients hold these open modes simultaneously?
// Reconstructed from the Section 5.2/5.4 semantics (UNIX allows concurrent
// read/write opens; writing a file open for execution is forbidden; shared
// read excludes writers; exclusive write excludes everyone).
bool OpenModesCompatible(uint32_t mode_a, uint32_t mode_b);

// The subset of `held` types that conflict with a proposed grant of `req`
// over `req_range`. Revoking exactly these (and no more) lets a client keep
// e.g. its byte-range data tokens when only its status token conflicts.
uint32_t ConflictingTypes(uint32_t held, const ByteRange& held_range, uint32_t req,
                          const ByteRange& req_range);

// Full compatibility relation between two token grants (different hosts).
bool TokensCompatible(uint32_t types_a, const ByteRange& range_a, uint32_t types_b,
                      const ByteRange& range_b);

}  // namespace dfs

#endif  // SRC_TOKENS_TOKEN_H_

// Mounted-volume view of an Episode aggregate: EpisodeVfs (a VFS, i.e. a
// mounted volume) and EpisodeVnode (the Vnode implementation).
//
// A VFS is a mounted volume, but the volume interface (create, clone, move,
// dump) is separate — it lives on the Aggregate and works on unmounted
// volumes (Section 2.1).
#ifndef SRC_EPISODE_VOLUME_H_
#define SRC_EPISODE_VOLUME_H_

#include <memory>

#include "src/episode/aggregate.h"
#include "src/vfs/vnode.h"

namespace dfs {

class EpisodeVfs : public Vfs, public std::enable_shared_from_this<EpisodeVfs> {
 public:
  EpisodeVfs(Aggregate* agg, uint64_t volume_id) : agg_(agg), volume_id_(volume_id) {}

  Result<VnodeRef> Root() override;
  Result<VnodeRef> VnodeByFid(const Fid& fid) override;
  Status Rename(Vnode& src_dir, std::string_view src_name, Vnode& dst_dir,
                std::string_view dst_name) override;
  Status Sync() override;
  bool ReadOnly() const override;

  Aggregate* aggregate() { return agg_; }
  uint64_t volume_id() const { return volume_id_; }

 private:
  Aggregate* agg_;
  uint64_t volume_id_;
};

class EpisodeVnode : public Vnode {
 public:
  EpisodeVnode(Aggregate* agg, uint64_t volume_id, uint64_t vnode, uint64_t uniq)
      : agg_(agg), volume_id_(volume_id), vnode_(vnode), uniq_(uniq) {}

  Fid fid() const override { return Fid{volume_id_, vnode_, uniq_}; }

  Result<FileAttr> GetAttr() override;
  Status SetAttr(const AttrUpdate& update) override;
  Result<size_t> Read(uint64_t offset, std::span<uint8_t> out) override;
  Result<size_t> Write(uint64_t offset, std::span<const uint8_t> data) override;
  Status Truncate(uint64_t new_size) override;
  Result<VnodeRef> Lookup(std::string_view name) override;
  Result<VnodeRef> Create(std::string_view name, FileType type, uint32_t mode,
                          const Cred& cred) override;
  Result<VnodeRef> CreateSymlink(std::string_view name, std::string_view target,
                                 const Cred& cred) override;
  Status Link(std::string_view name, Vnode& target) override;
  Status Unlink(std::string_view name) override;
  Status Rmdir(std::string_view name) override;
  Result<std::vector<DirEntry>> ReadDir() override;
  Result<std::string> ReadSymlink() override;
  Result<Acl> GetAcl() override;
  Status SetAcl(const Acl& acl) override;

 private:
  Aggregate* agg_;
  uint64_t volume_id_;
  uint64_t vnode_;
  uint64_t uniq_;

  friend class EpisodeVfs;
};

}  // namespace dfs

#endif  // SRC_EPISODE_VOLUME_H_

// An Episode aggregate: a unit of disk storage holding volumes (Section 2.1).
//
// The aggregate owns the buffer cache and the write-ahead log for its device,
// implements the container machinery (block maps with copy-on-write tree
// reference counts), the volume registry, and the VFS+ volume operations:
// create, delete, clone (COW snapshot), dump/restore (volume move and lazy
// replication), mount.
//
// Concurrency: one aggregate-wide operation mutex serializes mutations, which
// also makes every WAL transaction trivially serializable (see wal.h). This
// mutex is a leaf in the global Section-6 locking hierarchy: nothing called
// under it ever blocks on an RPC or a distributed-layer lock.
#ifndef SRC_EPISODE_AGGREGATE_H_
#define SRC_EPISODE_AGGREGATE_H_

#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/blockdev/block_device.h"
#include "src/buf/buffer_cache.h"
#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/vclock.h"
#include "src/episode/layout.h"
#include "src/vfs/vnode.h"
#include "src/wal/wal.h"

namespace dfs {

class EpisodeVfs;

class Aggregate : public VolumeOps {
 public:
  struct Options {
    size_t cache_blocks = 1024;
    uint64_t log_blocks = 512;  // 2 MiB log area
    // Volume ids handed out by this aggregate start here; give each aggregate
    // in a multi-server deployment a distinct base so FIDs are globally unique.
    uint64_t volume_id_base = 1;
    uint64_t default_anode_count = 4096;
    Wal::Options wal;  // log_start_block/log_blocks filled in by Format/Mount
  };

  // Initializes a fresh aggregate on the device and mounts it.
  static Result<std::unique_ptr<Aggregate>> Format(BlockDevice& dev, Options options);
  // Mounts an existing aggregate; always runs log recovery first (a clean log
  // replays as a no-op, so restart after crash and clean restart share code).
  static Result<std::unique_ptr<Aggregate>> Mount(BlockDevice& dev, Options options);

  ~Aggregate() override;

  // Flushes the log (metadata durability — the sync/fsync path).
  Status SyncLog();
  // Full checkpoint: log + all dirty buffers reach the disk.
  Status Checkpoint();
  // Simulated machine crash: every cached and in-memory state is dropped;
  // the device keeps exactly what was written. Mount() again to recover.
  void CrashNow();

  // Group-commit poll: flushes the log if the 30 s-equivalent interval
  // elapsed on the virtual clock (benchmarks call this between bursts).
  Status PollGroupCommit();

  // --- VolumeOps (VFS+ volume interface, Sections 2.1 / 3.3) ---
  Result<std::vector<VolumeInfo>> ListVolumes() override;
  Result<VolumeInfo> GetVolume(uint64_t volume_id) override;
  Result<uint64_t> CreateVolume(std::string_view name) override;
  Status DeleteVolume(uint64_t volume_id) override;
  Result<uint64_t> CloneVolume(uint64_t volume_id, std::string_view clone_name) override;
  Result<VfsRef> MountVolume(uint64_t volume_id) override;
  Result<VolumeDump> DumpVolume(uint64_t volume_id, uint64_t since_version) override;
  Result<uint64_t> RestoreVolume(const VolumeDump& dump) override;
  Status ApplyDelta(uint64_t volume_id, const VolumeDump& delta) override;

  Status SetVolumeBusy(uint64_t volume_id, bool busy) override;

  Wal& wal() { return *wal_; }
  BufferCache& cache() { return *cache_; }
  BlockDevice& device() { return dev_; }
  const Options& options() const { return options_; }

  // ==== Internal API used by EpisodeVfs/EpisodeVnode and the salvager ====
  // (public because the vnode layer lives in a separate translation unit; not
  // part of the supported user-facing surface).

  // What a container's leaf blocks hold; determines logging and the logical-
  // children rules for COW/free of leaf blocks.
  enum class Kind : uint8_t {
    kData,       // file contents: leaves unlogged
    kMeta,       // directories, symlinks, ACLs, registry: leaves logged
    kAnodeTable, // leaves logged; leaf "children" are the anodes' block trees
  };
  static Kind KindForAnode(AnodeType type);

  Mutex& op_mu() RETURN_CAPABILITY(op_mu_) { return op_mu_; }

  Result<Superblock> ReadSuper();
  Status WriteSuper(const TxnToken& txn, const Superblock& sb) REQUIRES(txn);

  // Registry access. slot_index is the position in the registry container.
  Result<std::pair<VolumeSlot, uint32_t>> FindVolumeSlot(uint64_t volume_id);
  Result<VolumeSlot> ReadSlot(uint32_t slot_index);
  Status WriteSlot(const TxnToken& txn, uint32_t slot_index, const VolumeSlot& slot) REQUIRES(txn);

  // Anode access within a volume. WriteAnode performs table-block COW as
  // needed and persists any resulting change to the volume's table descriptor.
  Result<AnodeRecord> ReadAnode(const VolumeSlot& vol, uint64_t vnode);
  Status WriteAnode(const TxnToken& txn, uint32_t slot_index, VolumeSlot& vol, uint64_t vnode,
                    const AnodeRecord& rec) REQUIRES(txn);
  // Allocates a free anode slot (scans the table); returns its vnode index.
  Result<uint64_t> AllocAnode(const TxnToken& txn, uint32_t slot_index, VolumeSlot& vol,
                              AnodeType type, const AnodeRecord& init) REQUIRES(txn);
  // Allocates the anode at a *specific* index (volume restore path).
  Status AllocAnodeAt(const TxnToken& txn, uint32_t slot_index, VolumeSlot& vol, uint64_t vnode,
                      const AnodeRecord& init) REQUIRES(txn);
  // Frees the anode and its entire block tree.
  Status FreeAnode(const TxnToken& txn, uint32_t slot_index, VolumeSlot& vol, uint64_t vnode)
      REQUIRES(txn);

  // Container byte-level I/O (COW-aware; desc mutated in memory, caller
  // persists it). Reads of holes return zeros.
  Status ReadContainer(const AnodeRecord& desc, uint64_t offset, std::span<uint8_t> out);
  Status WriteContainer(const TxnToken& txn, AnodeRecord& desc, Kind kind, uint64_t offset,
                        std::span<const uint8_t> data, bool* desc_changed) REQUIRES(txn);
  Status TruncateContainer(const TxnToken& txn, AnodeRecord& desc, Kind kind, uint64_t new_size,
                           bool* desc_changed) REQUIRES(txn);
  // Increments the refcount of every top-level block the descriptor references
  // (the clone primitive).
  Status ShareTopLevel(const TxnToken& txn, const AnodeRecord& desc) REQUIRES(txn);

  // Directory-entry helpers over a directory anode's container. The caller
  // persists dir_an afterwards via WriteAnode. DirAddEntry fails with kExists
  // on duplicates; DirRemoveEntry with kNotFound.
  Status DirAddEntry(const TxnToken& txn, AnodeRecord& dir_an, const DirSlot& entry,
                     bool* desc_changed) REQUIRES(txn);
  Result<DirSlot> DirFind(const AnodeRecord& dir_an, std::string_view name);
  Status DirRemoveEntry(const TxnToken& txn, AnodeRecord& dir_an, std::string_view name,
                        bool* desc_changed) REQUIRES(txn);
  // Replaces the target of an existing entry (rename ".." fixups etc.).
  Status DirUpdateEntry(const TxnToken& txn, AnodeRecord& dir_an, std::string_view name,
                        uint64_t vnode, uint64_t uniq, uint8_t type, bool* desc_changed)
      REQUIRES(txn);
  Result<std::vector<DirSlot>> DirList(const AnodeRecord& dir_an);
  // True when the directory holds only "." and "..".
  Result<bool> DirIsEmpty(const AnodeRecord& dir_an);

  // Takes the volume's next mutation stamp (persisting the counter). Mutating
  // vnode operations record it as the touched file's data_version, giving a
  // volume-global "changed since V" order for replication and caching.
  Result<uint64_t> BumpVersion(const TxnToken& txn, uint32_t slot_index, VolumeSlot& vol)
      REQUIRES(txn);

  // Ensures the table block holding `vnode` is privately owned by this volume
  // (COW away from any clone) so subsequent refcount arithmetic on the
  // anode's block tree is correct. Every mutating vnode operation calls this
  // before touching the anode's map.
  Status PrivatizeAnode(const TxnToken& txn, uint32_t slot_index, VolumeSlot& vol, uint64_t vnode)
      REQUIRES(txn);

  // Block accounting.
  Result<uint16_t> GetRefcount(uint64_t blockno);
  uint64_t FreeBlockCount();
  // Blocks referenced (transitively, following the refcount-tree rules) by a
  // container — used for VolumeInfo reporting and by tests.
  Result<uint64_t> CountTreeBlocks(const AnodeRecord& desc, Kind kind);

  // --- Salvager (Section 2.2: logging does not remove the need for a
  // salvager after media failure; it is also this repo's invariant checker).
  struct SalvageReport {
    uint64_t volumes = 0;
    uint64_t anodes = 0;
    uint64_t blocks_reachable = 0;
    uint64_t refcount_fixes = 0;
    uint64_t bad_pointers = 0;    // out-of-range block pointers cleared
    uint64_t orphan_entries = 0;  // directory entries to free/stale anodes removed
    uint64_t nlink_fixes = 0;
    uint64_t leaked_blocks = 0;   // allocated on disk but unreachable

    bool clean() const {
      return refcount_fixes == 0 && bad_pointers == 0 && orphan_entries == 0 &&
             nlink_fixes == 0 && leaked_blocks == 0;
    }
  };
  // Scans every volume, recomputes block reference counts and link counts,
  // validates directory structure. With repair=true, fixes what it finds.
  Result<SalvageReport> Salvage(bool repair);

  // Runs a mutation as a WAL transaction under the aggregate op lock:
  // commits on OK, aborts on error. fn: Status(const TxnToken&). The token is
  // the open-transaction capability (see wal.h): only these two templates can
  // obtain one, so a WAL-mutating helper — they all take `const TxnToken&`
  // with REQUIRES(txn) — cannot be reached outside a transaction.
  // The callback runs with op_mu_ held, but the analysis checks a lambda body
  // as a free function and cannot see that; helpers that touch guarded
  // aggregate state from inside a transaction use Mutex::AssertHeld instead
  // of REQUIRES so RunTxn callers need no annotation. Likewise the lambda
  // starts with an empty capability set, so its body calls txn.AssertIssued()
  // (the token analogue of AssertHeld) before using token-requiring helpers.
  template <typename Fn>
  Status RunTxn(Fn&& fn) {
    MutexLock lock(op_mu_);
    return RunTxnLocked(std::forward<Fn>(fn));
  }
  template <typename Fn>
  Status RunTxnLocked(Fn&& fn) REQUIRES(op_mu_) {
    TxnToken txn = wal_->Begin();
    txn.AssertIssued();
    Status s = fn(txn);
    if (s.ok()) {
      return wal_->Commit(txn);
    }
    (void)wal_->Abort(txn);
    return s;
  }

 private:
  Aggregate(BlockDevice& dev, Options options);

  Status InitWal();

  // Refcount table primitives (logged).
  Status SetRefcount(const TxnToken& txn, uint64_t blockno, uint16_t value) REQUIRES(txn);
  Status IncRef(const TxnToken& txn, uint64_t blockno) REQUIRES(txn);
  // Decrements; sets *now_free when the count reaches zero.
  Status DecRef(const TxnToken& txn, uint64_t blockno, bool* now_free) REQUIRES(txn);
  Status AdjustFreeBlocks(const TxnToken& txn, int64_t delta) REQUIRES(txn);

  // Allocates a block (refcount 0 -> 1). Content is whatever was there.
  Result<uint64_t> AllocBlock(const TxnToken& txn) REQUIRES(txn);
  // Allocates a block and durably zeroes it (fresh metadata block).
  Result<uint64_t> AllocMetaBlockZeroed(const TxnToken& txn) REQUIRES(txn);

  // Copy-on-write primitives. Each returns the private replacement block.
  Result<uint64_t> CowInterior(const TxnToken& txn, uint64_t blockno);  // children: 512 ptrs
  Result<uint64_t> CowLeaf(const TxnToken& txn, uint64_t blockno, Kind kind);  // leaf (per kind)

  // Logical-children hooks for anode-table leaf blocks.
  Status IncAnodeTableLeafChildren(const TxnToken& txn, uint64_t blockno) REQUIRES(txn);
  Status FreeAnodeTreesInLeaf(const TxnToken& txn, uint64_t blockno) REQUIRES(txn);

  // Block-map navigation. Returns 0 for holes.
  Result<uint64_t> MapBlockForRead(const AnodeRecord& desc, uint64_t fblock);
  // Ensures a privately-owned leaf block exists for fblock (allocating and
  // COWing along the path); logs interior-pointer updates.
  Result<uint64_t> MapBlockForWrite(const TxnToken& txn, AnodeRecord& desc, Kind kind,
                                    uint64_t fblock, bool* desc_changed) REQUIRES(txn);

  // Frees the subtree rooted at ptr (level 0 = leaf), honoring shared nodes.
  Status FreeSubtree(const TxnToken& txn, uint64_t ptr, int level, Kind kind) REQUIRES(txn);
  // Truncation helper over one top-level slot.
  Status TruncSubtree(const TxnToken& txn, uint64_t* slot, int level, uint64_t base_fblock,
                      uint64_t keep_blocks, Kind kind, bool* changed) REQUIRES(txn);
  Status CountSubtree(uint64_t ptr, int level, Kind kind, uint64_t* count);

  // Writes a full-block logged update (old value read from disk/cache).
  Status LogWholeBlock(const TxnToken& txn, uint64_t blockno, std::span<const uint8_t> content)
      REQUIRES(txn);

  // Logged partial update helper.
  Status LogBlockBytes(const TxnToken& txn, uint64_t blockno, uint32_t offset,
                       std::span<const uint8_t> bytes) REQUIRES(txn);

  Result<VolumeDumpFile> DumpOneFile(const VolumeSlot& vol, uint64_t vnode,
                                     const AnodeRecord& an);
  Status RestoreOneFile(const TxnToken& txn, uint32_t slot_index, VolumeSlot& vol,
                        const VolumeDumpFile& f, bool overwrite) REQUIRES(txn);

  Result<uint64_t> CreateVolumeLocked(std::string_view name, uint64_t forced_id)
      REQUIRES(op_mu_);
  Status DeleteVolumeLocked(uint64_t volume_id) REQUIRES(op_mu_);

  BlockDevice& dev_;
  Options options_;
  std::unique_ptr<BufferCache> cache_;
  std::unique_ptr<Wal> wal_;
  // Leaf in the Section-6 hierarchy (see the file comment); nothing under it
  // blocks on an RPC or a distributed-layer lock.
  Mutex op_mu_;
  uint64_t alloc_hint_ GUARDED_BY(op_mu_) = 0;
  // volume_id -> next free anode index
  std::unordered_map<uint64_t, uint64_t> anode_hint_ GUARDED_BY(op_mu_);

  friend class EpisodeVfs;
  friend class EpisodeVnode;
};

}  // namespace dfs

#endif  // SRC_EPISODE_AGGREGATE_H_

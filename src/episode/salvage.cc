// The Episode salvager.
//
// Logging obviates the routine fsck, but media failure still requires a
// salvage pass (Section 2.2). Because all data and meta-data live in anodes,
// the salvager walks one uniform structure: superblock -> registry ->
// per-volume anode tables -> block trees. It recomputes the expected
// reference count of every block (1 per physical parent, the invariant the
// COW machinery maintains), validates directory entries and link counts, and
// optionally repairs.
#include <cstring>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/episode/aggregate.h"

namespace dfs {

namespace {

struct Walker {
  Aggregate& agg;
  BufferCache& cache;
  uint64_t block_count;
  std::vector<uint32_t> expected;          // expected refcount per block
  std::unordered_set<uint64_t> expanded;   // blocks whose children were counted
  Aggregate::SalvageReport* report;

  bool ValidBlock(uint64_t b) const { return b > 0 && b < block_count; }

  // Adds one parent reference to `b`; expands its children on first visit.
  Status Visit(uint64_t b, int level, Aggregate::Kind kind) {
    if (!ValidBlock(b)) {
      report->bad_pointers += 1;
      return Status::Ok();
    }
    expected[b] += 1;
    if (!expanded.insert(b).second) {
      return Status::Ok();  // children already counted (shared block)
    }
    report->blocks_reachable += 1;
    if (level > 0) {
      std::vector<uint8_t> content(kBlockSize);
      {
        ASSIGN_OR_RETURN(BufferCache::Ref buf, cache.Get(b));
        std::memcpy(content.data(), buf.data(), kBlockSize);
      }
      for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
        uint64_t child;
        std::memcpy(&child, content.data() + i * 8, 8);
        if (child != 0) {
          RETURN_IF_ERROR(Visit(child, level - 1, kind));
        }
      }
    } else if (kind == Aggregate::Kind::kAnodeTable) {
      std::vector<uint8_t> content(kBlockSize);
      {
        ASSIGN_OR_RETURN(BufferCache::Ref buf, cache.Get(b));
        std::memcpy(content.data(), buf.data(), kBlockSize);
      }
      for (uint32_t i = 0; i < kAnodesPerBlock; ++i) {
        AnodeRecord a = AnodeRecord::Decode(
            std::span<const uint8_t>(content.data() + i * kAnodeSize, kAnodeSize));
        if (a.type == AnodeType::kFree) {
          continue;
        }
        report->anodes += 1;
        RETURN_IF_ERROR(VisitDesc(a, Aggregate::KindForAnode(a.type)));
      }
    }
    return Status::Ok();
  }

  Status VisitDesc(const AnodeRecord& desc, Aggregate::Kind kind) {
    for (uint32_t d = 0; d < kDirectBlocks; ++d) {
      if (desc.direct[d] != 0) {
        RETURN_IF_ERROR(Visit(desc.direct[d], 0, kind));
      }
    }
    if (desc.indirect != 0) {
      RETURN_IF_ERROR(Visit(desc.indirect, 1, kind));
    }
    if (desc.dindirect != 0) {
      RETURN_IF_ERROR(Visit(desc.dindirect, 2, kind));
    }
    return Status::Ok();
  }
};

}  // namespace

Result<Aggregate::SalvageReport> Aggregate::Salvage(bool repair) {
  MutexLock lock(op_mu_);
  SalvageReport report;
  ASSIGN_OR_RETURN(Superblock sb, ReadSuper());

  Walker walker{*this, *cache_, sb.block_count, {}, {}, &report};
  walker.expected.assign(sb.block_count, 0);

  // Fixed extents established at format time.
  uint64_t data_start = sb.log_start + sb.log_blocks;  // first registry block comes next
  for (uint64_t b = 0; b < data_start && b < sb.block_count; ++b) {
    walker.expected[b] = 1;
  }
  // The registry container (its blocks are ordinary allocations except the
  // first, which Format pre-reserved — the walk counts them uniformly, so
  // clear the pre-reservation and let the walk account for it).
  if (sb.registry.direct[0] < sb.block_count) {
    walker.expected[sb.registry.direct[0]] = 0;
  }
  RETURN_IF_ERROR(walker.VisitDesc(sb.registry, Kind::kMeta));

  // Walk every volume's anode table.
  uint32_t nslots = static_cast<uint32_t>(sb.registry.size / kVolumeSlotSize);
  std::vector<VolumeSlot> volumes;
  std::vector<uint32_t> slot_indices;
  {
    std::vector<uint8_t> bytes(kVolumeSlotSize);
    for (uint32_t i = 0; i < nslots; ++i) {
      RETURN_IF_ERROR(ReadContainer(sb.registry, uint64_t{i} * kVolumeSlotSize, bytes));
      VolumeSlot s = VolumeSlot::Decode(bytes);
      if (s.volume_id == 0) {
        continue;
      }
      report.volumes += 1;
      RETURN_IF_ERROR(walker.VisitDesc(s.table, Kind::kAnodeTable));
      volumes.push_back(std::move(s));
      slot_indices.push_back(i);
    }
  }

  // Compare expected vs. stored reference counts.
  for (uint64_t b = 0; b < sb.block_count; ++b) {
    ASSIGN_OR_RETURN(uint16_t stored, GetRefcount(b));
    uint32_t want = walker.expected[b];
    if (stored == want) {
      continue;
    }
    if (want == 0 && stored > 0) {
      report.leaked_blocks += 1;
    } else {
      report.refcount_fixes += 1;
    }
    if (repair) {
      RETURN_IF_ERROR(RunTxnLocked([&](const TxnToken& txn) -> Status {
        txn.AssertIssued();
        return SetRefcount(txn, b, static_cast<uint16_t>(want));
      }));
    }
  }

  // Directory structure and link counts, per volume.
  for (size_t vi = 0; vi < volumes.size(); ++vi) {
    VolumeSlot& vol = volumes[vi];
    uint32_t slot_index = slot_indices[vi];
    std::unordered_map<uint64_t, uint32_t> link_count;  // vnode -> entries referencing it
    std::unordered_map<uint64_t, uint32_t> subdir_count;

    for (uint64_t v = 1; v < vol.anode_count; ++v) {
      ASSIGN_OR_RETURN(AnodeRecord rec, ReadAnode(vol, v));
      if (rec.type != AnodeType::kDirectory) {
        continue;
      }
      ASSIGN_OR_RETURN(std::vector<DirSlot> entries, DirList(rec));
      for (const DirSlot& e : entries) {
        bool bad = false;
        if (e.vnode == 0 || e.vnode >= vol.anode_count) {
          bad = true;
        } else {
          ASSIGN_OR_RETURN(AnodeRecord child, ReadAnode(vol, e.vnode));
          if (child.type == AnodeType::kFree || child.type == AnodeType::kAcl ||
              child.uniq != e.uniq) {
            bad = true;
          }
        }
        if (bad) {
          report.orphan_entries += 1;
          if (repair) {
            RETURN_IF_ERROR(RunTxnLocked([&](const TxnToken& txn) -> Status {
              txn.AssertIssued();
              RETURN_IF_ERROR(PrivatizeAnode(txn, slot_index, vol, v));
              ASSIGN_OR_RETURN(AnodeRecord dir, ReadAnode(vol, v));
              bool ch = false;
              RETURN_IF_ERROR(DirRemoveEntry(txn, dir, e.name, &ch));
              return WriteAnode(txn, slot_index, vol, v, dir);
            }));
          }
          continue;
        }
        if (e.name == ".") {
          link_count[v] += 1;
        } else if (e.name == "..") {
          // counts toward the parent's nlink
          link_count[e.vnode] += 1;
          subdir_count[e.vnode] += 1;
          (void)subdir_count;
        } else {
          link_count[e.vnode] += 1;
        }
      }
    }

    for (uint64_t v = 1; v < vol.anode_count; ++v) {
      ASSIGN_OR_RETURN(AnodeRecord rec, ReadAnode(vol, v));
      if (rec.type == AnodeType::kFree || rec.type == AnodeType::kAcl) {
        continue;
      }
      uint32_t want = link_count.count(v) != 0 ? link_count[v] : 0;
      if (rec.nlink != want) {
        report.nlink_fixes += 1;
        if (repair) {
          RETURN_IF_ERROR(RunTxnLocked([&](const TxnToken& txn) -> Status {
            txn.AssertIssued();
            ASSIGN_OR_RETURN(AnodeRecord fresh, ReadAnode(vol, v));
            fresh.nlink = static_cast<uint16_t>(want);
            return WriteAnode(txn, slot_index, vol, v, fresh);
          }));
        }
      }
    }
  }

  RETURN_IF_ERROR(wal_->Sync());
  return report;
}

}  // namespace dfs

#include "src/episode/layout.h"

#include <algorithm>

namespace dfs {
namespace {

void PutLe64(std::span<uint8_t> out, size_t off, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[off + i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

uint64_t GetLe64(std::span<const uint8_t> in, size_t off) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(in[off + i]) << (8 * i);
  }
  return v;
}

void PutLe32(std::span<uint8_t> out, size_t off, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[off + i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

uint32_t GetLe32(std::span<const uint8_t> in, size_t off) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(in[off + i]) << (8 * i);
  }
  return v;
}

void PutLe16(std::span<uint8_t> out, size_t off, uint16_t v) {
  out[off] = static_cast<uint8_t>(v);
  out[off + 1] = static_cast<uint8_t>(v >> 8);
}

uint16_t GetLe16(std::span<const uint8_t> in, size_t off) {
  return static_cast<uint16_t>(in[off] | (in[off + 1] << 8));
}

}  // namespace

void AnodeRecord::Encode(std::span<uint8_t> out) const {
  std::fill(out.begin(), out.begin() + kAnodeSize, uint8_t{0});
  out[0] = static_cast<uint8_t>(type);
  out[1] = flags;
  PutLe16(out, 2, nlink);
  PutLe32(out, 4, mode);
  PutLe32(out, 8, uid);
  PutLe32(out, 12, gid);
  PutLe64(out, 16, size);
  PutLe64(out, 24, mtime);
  PutLe64(out, 32, ctime);
  PutLe64(out, 40, atime);
  PutLe64(out, 48, data_version);
  PutLe64(out, 56, acl_vnode);
  PutLe64(out, 64, uniq);
  for (uint32_t i = 0; i < kDirectBlocks; ++i) {
    PutLe64(out, 72 + 8 * i, direct[i]);
  }
  PutLe64(out, 120, indirect);
  PutLe64(out, 128, dindirect);
}

AnodeRecord AnodeRecord::Decode(std::span<const uint8_t> in) {
  AnodeRecord a;
  a.type = static_cast<AnodeType>(in[0]);
  a.flags = in[1];
  a.nlink = GetLe16(in, 2);
  a.mode = GetLe32(in, 4);
  a.uid = GetLe32(in, 8);
  a.gid = GetLe32(in, 12);
  a.size = GetLe64(in, 16);
  a.mtime = GetLe64(in, 24);
  a.ctime = GetLe64(in, 32);
  a.atime = GetLe64(in, 40);
  a.data_version = GetLe64(in, 48);
  a.acl_vnode = GetLe64(in, 56);
  a.uniq = GetLe64(in, 64);
  for (uint32_t i = 0; i < kDirectBlocks; ++i) {
    a.direct[i] = GetLe64(in, 72 + 8 * i);
  }
  a.indirect = GetLe64(in, 120);
  a.dindirect = GetLe64(in, 128);
  return a;
}

void VolumeSlot::Encode(std::span<uint8_t> out) const {
  std::fill(out.begin(), out.begin() + kVolumeSlotSize, uint8_t{0});
  PutLe64(out, 0, volume_id);
  out[8] = flags;
  size_t namelen = std::min<size_t>(name.size(), kMaxVolumeName);
  out[9] = static_cast<uint8_t>(namelen);
  std::memcpy(out.data() + 10, name.data(), namelen);
  PutLe64(out, 80, root_vnode);
  PutLe64(out, 88, next_uniq);
  PutLe64(out, 96, backing_volume);
  PutLe64(out, 104, anode_count);
  table.Encode(out.subspan(112, kAnodeSize));
  PutLe64(out, 112 + kAnodeSize, version_counter);
}

VolumeSlot VolumeSlot::Decode(std::span<const uint8_t> in) {
  VolumeSlot s;
  s.volume_id = GetLe64(in, 0);
  s.flags = in[8];
  uint8_t namelen = in[9];
  s.name.assign(reinterpret_cast<const char*>(in.data() + 10),
                std::min<size_t>(namelen, kMaxVolumeName));
  s.root_vnode = GetLe64(in, 80);
  s.next_uniq = GetLe64(in, 88);
  s.backing_volume = GetLe64(in, 96);
  s.anode_count = GetLe64(in, 104);
  s.table = AnodeRecord::Decode(in.subspan(112, kAnodeSize));
  s.version_counter = GetLe64(in, 112 + kAnodeSize);
  return s;
}

void Superblock::Encode(std::span<uint8_t> out) const {
  std::fill(out.begin(), out.begin() + kEncodedSize, uint8_t{0});
  PutLe64(out, 0, magic);
  PutLe32(out, 8, version);
  PutLe32(out, 12, clean);
  PutLe64(out, 16, block_count);
  PutLe64(out, 24, next_volume_id);
  PutLe64(out, 32, free_blocks);
  PutLe64(out, 40, rc_start);
  PutLe64(out, 48, rc_blocks);
  PutLe64(out, 56, log_start);
  PutLe64(out, 64, log_blocks);
  registry.Encode(out.subspan(72, kAnodeSize));
}

Result<Superblock> Superblock::Decode(std::span<const uint8_t> in) {
  if (in.size() < kEncodedSize) {
    return Status(ErrorCode::kCorrupt, "superblock too small");
  }
  Superblock sb;
  sb.magic = GetLe64(in, 0);
  if (sb.magic != kAggregateMagic) {
    return Status(ErrorCode::kCorrupt, "bad aggregate magic");
  }
  sb.version = GetLe32(in, 8);
  sb.clean = GetLe32(in, 12);
  sb.block_count = GetLe64(in, 16);
  sb.next_volume_id = GetLe64(in, 24);
  sb.free_blocks = GetLe64(in, 32);
  sb.rc_start = GetLe64(in, 40);
  sb.rc_blocks = GetLe64(in, 48);
  sb.log_start = GetLe64(in, 56);
  sb.log_blocks = GetLe64(in, 64);
  sb.registry = AnodeRecord::Decode(in.subspan(72, kAnodeSize));
  return sb;
}

void DirSlot::Encode(std::span<uint8_t> out) const {
  std::fill(out.begin(), out.begin() + kDirEntrySize, uint8_t{0});
  PutLe64(out, 0, vnode);
  PutLe64(out, 8, uniq);
  out[16] = in_use;
  out[17] = type;
  size_t namelen = std::min<size_t>(name.size(), kMaxNameLen);
  out[18] = static_cast<uint8_t>(namelen);
  std::memcpy(out.data() + 19, name.data(), namelen);
}

DirSlot DirSlot::Decode(std::span<const uint8_t> in) {
  DirSlot d;
  d.vnode = GetLe64(in, 0);
  d.uniq = GetLe64(in, 8);
  d.in_use = in[16];
  d.type = in[17];
  uint8_t namelen = in[18];
  d.name.assign(reinterpret_cast<const char*>(in.data() + 19),
                std::min<size_t>(namelen, kMaxNameLen));
  return d;
}

}  // namespace dfs

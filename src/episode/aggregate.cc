#include "src/episode/aggregate.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <map>
#include <optional>
#include <unordered_map>

#include "src/episode/volume.h"

namespace dfs {
namespace {

uint64_t GetPtr(const uint8_t* block, uint32_t index) {
  uint64_t v = 0;
  std::memcpy(&v, block + index * 8, 8);
  return v;
}

std::array<uint8_t, 8> EncodePtr(uint64_t v) {
  std::array<uint8_t, 8> out;
  std::memcpy(out.data(), &v, 8);
  return out;
}

}  // namespace

Aggregate::Kind Aggregate::KindForAnode(AnodeType type) {
  switch (type) {
    case AnodeType::kFile:
      return Kind::kData;
    case AnodeType::kAnodeTable:
      return Kind::kAnodeTable;
    default:
      return Kind::kMeta;
  }
}

Aggregate::Aggregate(BlockDevice& dev, Options options) : dev_(dev), options_(options) {
  cache_ = std::make_unique<BufferCache>(dev_, options_.cache_blocks);
}

Aggregate::~Aggregate() = default;

Status Aggregate::InitWal() {
  ASSIGN_OR_RETURN(Superblock sb, ReadSuper());
  Wal::Options wopt = options_.wal;
  wopt.log_start_block = sb.log_start;
  wopt.log_blocks = sb.log_blocks;
  wal_ = std::make_unique<Wal>(dev_, *cache_, wopt);
  cache_->AttachWal(wal_.get());
  return Status::Ok();
}

Result<std::unique_ptr<Aggregate>> Aggregate::Format(BlockDevice& dev, Options options) {
  uint64_t block_count = dev.BlockCount();
  uint64_t rc_blocks = (block_count * 2 + kBlockSize - 1) / kBlockSize;
  uint64_t log_start = 1 + rc_blocks;
  uint64_t registry_block = log_start + options.log_blocks;
  uint64_t data_start = registry_block + 1;
  if (data_start + 16 >= block_count) {
    return Status(ErrorCode::kInvalidArgument, "device too small for aggregate");
  }

  Superblock sb;
  sb.block_count = block_count;
  sb.next_volume_id = options.volume_id_base;
  sb.free_blocks = block_count - data_start;
  sb.rc_start = 1;
  sb.rc_blocks = rc_blocks;
  sb.log_start = log_start;
  sb.log_blocks = options.log_blocks;
  sb.registry.type = AnodeType::kFile;  // plain meta container
  sb.registry.size = kBlockSize;
  sb.registry.direct[0] = registry_block;

  std::vector<uint8_t> block(kBlockSize, 0);
  sb.Encode(block);
  RETURN_IF_ERROR(dev.Write(0, block));

  // Reference-count table: reserved blocks (superblock, rc table, log area,
  // first registry block) start at count 1; everything else is free (0).
  for (uint64_t rb = 0; rb < rc_blocks; ++rb) {
    std::fill(block.begin(), block.end(), uint8_t{0});
    uint64_t first = rb * (kBlockSize / 2);
    for (uint64_t i = 0; i < kBlockSize / 2; ++i) {
      uint64_t b = first + i;
      if (b < data_start && b < block_count) {
        block[i * 2] = 1;
      }
    }
    RETURN_IF_ERROR(dev.Write(1 + rb, block));
  }
  std::fill(block.begin(), block.end(), uint8_t{0});
  RETURN_IF_ERROR(dev.Write(registry_block, block));
  RETURN_IF_ERROR(dev.Flush());

  auto agg = std::unique_ptr<Aggregate>(new Aggregate(dev, options));
  RETURN_IF_ERROR(agg->InitWal());
  RETURN_IF_ERROR(agg->wal_->Format());
  {
    MutexLock lock(agg->op_mu_);  // not published yet; keeps the analysis exact
    agg->alloc_hint_ = data_start;
  }
  return agg;
}

Result<std::unique_ptr<Aggregate>> Aggregate::Mount(BlockDevice& dev, Options options) {
  auto agg = std::unique_ptr<Aggregate>(new Aggregate(dev, options));
  {
    // Validate the superblock before trusting any geometry.
    std::vector<uint8_t> block(kBlockSize);
    RETURN_IF_ERROR(dev.Read(0, block));
    ASSIGN_OR_RETURN(Superblock sb, Superblock::Decode(block));
    if (sb.block_count != dev.BlockCount()) {
      return Status(ErrorCode::kCorrupt, "superblock block count mismatch");
    }
  }
  RETURN_IF_ERROR(agg->InitWal());
  // Always recover: a clean log replays as a no-op, so the crash-restart path
  // and the clean-restart path are the same code (and the same test surface).
  ASSIGN_OR_RETURN(Wal::RecoveryStats rstats, agg->wal_->Recover());
  (void)rstats;
  return agg;
}

Status Aggregate::SyncLog() { return wal_->Sync(); }

Status Aggregate::Checkpoint() {
  MutexLock lock(op_mu_);
  return wal_->Checkpoint();
}

void Aggregate::CrashNow() { cache_->Crash(); }

Status Aggregate::PollGroupCommit() { return wal_->MaybeGroupCommit(); }

// --- Superblock / registry ---

Result<Superblock> Aggregate::ReadSuper() {
  ASSIGN_OR_RETURN(BufferCache::Ref buf, cache_->Get(0));
  return Superblock::Decode(std::span<const uint8_t>(buf.data(), kBlockSize));
}

Status Aggregate::WriteSuper(const TxnToken& txn, const Superblock& sb) {
  std::vector<uint8_t> bytes(Superblock::kEncodedSize);
  sb.Encode(bytes);
  return LogBlockBytes(txn, 0, 0, bytes);
}

Result<VolumeSlot> Aggregate::ReadSlot(uint32_t slot_index) {
  ASSIGN_OR_RETURN(Superblock sb, ReadSuper());
  if (uint64_t{slot_index} * kVolumeSlotSize >= sb.registry.size) {
    return Status(ErrorCode::kNotFound, "registry slot out of range");
  }
  std::vector<uint8_t> bytes(kVolumeSlotSize);
  RETURN_IF_ERROR(ReadContainer(sb.registry, uint64_t{slot_index} * kVolumeSlotSize, bytes));
  return VolumeSlot::Decode(bytes);
}

Status Aggregate::WriteSlot(const TxnToken& txn, uint32_t slot_index, const VolumeSlot& slot) {
  ASSIGN_OR_RETURN(Superblock sb, ReadSuper());
  std::vector<uint8_t> bytes(kVolumeSlotSize);
  slot.Encode(bytes);
  bool changed = false;
  RETURN_IF_ERROR(WriteContainer(txn, sb.registry, Kind::kMeta,
                                 uint64_t{slot_index} * kVolumeSlotSize, bytes, &changed));
  if (changed) {
    RETURN_IF_ERROR(WriteSuper(txn, sb));
  }
  return Status::Ok();
}

Result<std::pair<VolumeSlot, uint32_t>> Aggregate::FindVolumeSlot(uint64_t volume_id) {
  ASSIGN_OR_RETURN(Superblock sb, ReadSuper());
  uint32_t nslots = static_cast<uint32_t>(sb.registry.size / kVolumeSlotSize);
  std::vector<uint8_t> bytes(kVolumeSlotSize);
  for (uint32_t i = 0; i < nslots; ++i) {
    RETURN_IF_ERROR(ReadContainer(sb.registry, uint64_t{i} * kVolumeSlotSize, bytes));
    VolumeSlot s = VolumeSlot::Decode(bytes);
    if (s.volume_id == volume_id) {
      return std::make_pair(std::move(s), i);
    }
  }
  return Status(ErrorCode::kNotFound, "no such volume");
}

// --- Refcount table ---

Result<uint16_t> Aggregate::GetRefcount(uint64_t blockno) {
  ASSIGN_OR_RETURN(Superblock sb, ReadSuper());
  if (blockno >= sb.block_count) {
    return Status(ErrorCode::kCorrupt, "refcount query out of range");
  }
  uint64_t rcblock = sb.rc_start + blockno / (kBlockSize / 2);
  uint32_t off = static_cast<uint32_t>((blockno % (kBlockSize / 2)) * 2);
  ASSIGN_OR_RETURN(BufferCache::Ref buf, cache_->Get(rcblock));
  uint16_t v;
  std::memcpy(&v, buf.data() + off, 2);
  return v;
}

Status Aggregate::SetRefcount(const TxnToken& txn, uint64_t blockno, uint16_t value) {
  ASSIGN_OR_RETURN(Superblock sb, ReadSuper());
  if (blockno >= sb.block_count) {
    return Status(ErrorCode::kCorrupt, "refcount update out of range");
  }
  uint64_t rcblock = sb.rc_start + blockno / (kBlockSize / 2);
  uint32_t off = static_cast<uint32_t>((blockno % (kBlockSize / 2)) * 2);
  uint8_t bytes[2] = {static_cast<uint8_t>(value), static_cast<uint8_t>(value >> 8)};
  return LogBlockBytes(txn, rcblock, off, bytes);
}

Status Aggregate::IncRef(const TxnToken& txn, uint64_t blockno) {
  ASSIGN_OR_RETURN(uint16_t v, GetRefcount(blockno));
  if (v == UINT16_MAX) {
    return Status(ErrorCode::kNoSpace, "block refcount saturated");
  }
  return SetRefcount(txn, blockno, static_cast<uint16_t>(v + 1));
}

Status Aggregate::DecRef(const TxnToken& txn, uint64_t blockno, bool* now_free) {
  ASSIGN_OR_RETURN(uint16_t v, GetRefcount(blockno));
  if (v == 0) {
    return Status(ErrorCode::kCorrupt, "double free of block " + std::to_string(blockno));
  }
  RETURN_IF_ERROR(SetRefcount(txn, blockno, static_cast<uint16_t>(v - 1)));
  if (now_free != nullptr) {
    *now_free = (v == 1);
  }
  op_mu_.AssertHeld();  // reached only from inside a RunTxn/RunTxnLocked body
  if (v == 1 && blockno < alloc_hint_) {
    alloc_hint_ = blockno;
  }
  return Status::Ok();
}

Result<uint64_t> Aggregate::AllocBlock(const TxnToken& txn) {
  op_mu_.AssertHeld();  // reached only from inside a RunTxn/RunTxnLocked body
  ASSIGN_OR_RETURN(Superblock sb, ReadSuper());
  uint64_t start = std::max<uint64_t>(alloc_hint_, 1);
  for (uint64_t pass = 0; pass < 2; ++pass) {
    uint64_t from = (pass == 0) ? start : 1;
    uint64_t to = (pass == 0) ? sb.block_count : start;
    for (uint64_t b = from; b < to; ++b) {
      ASSIGN_OR_RETURN(uint16_t rc, GetRefcount(b));
      if (rc == 0) {
        RETURN_IF_ERROR(SetRefcount(txn, b, 1));
        alloc_hint_ = b + 1;
        return b;
      }
    }
  }
  return Status(ErrorCode::kNoSpace, "aggregate full");
}

uint64_t Aggregate::FreeBlockCount() {
  auto sbr = ReadSuper();
  if (!sbr.ok()) {
    return 0;
  }
  uint64_t free = 0;
  for (uint64_t b = 0; b < sbr->block_count; ++b) {
    auto rc = GetRefcount(b);
    if (rc.ok() && *rc == 0) {
      ++free;
    }
  }
  return free;
}

Status Aggregate::LogBlockBytes(const TxnToken& txn, uint64_t blockno, uint32_t offset,
                                std::span<const uint8_t> bytes) {
  ASSIGN_OR_RETURN(BufferCache::Ref buf, cache_->Get(blockno));
  return wal_->LogUpdate(txn, buf, offset, bytes);
}

Status Aggregate::LogWholeBlock(const TxnToken& txn, uint64_t blockno,
                                std::span<const uint8_t> content) {
  ASSIGN_OR_RETURN(BufferCache::Ref buf, cache_->Get(blockno));
  return wal_->LogUpdate(txn, buf, 0, content);
}

Result<uint64_t> Aggregate::AllocMetaBlockZeroed(const TxnToken& txn) {
  ASSIGN_OR_RETURN(uint64_t b, AllocBlock(txn));
  std::vector<uint8_t> zeros(kBlockSize, 0);
  RETURN_IF_ERROR(LogWholeBlock(txn, b, zeros));
  return b;
}

// --- Copy-on-write primitives ---

Result<uint64_t> Aggregate::CowInterior(const TxnToken& txn, uint64_t blockno) {
  ASSIGN_OR_RETURN(uint64_t newb, AllocBlock(txn));
  std::vector<uint8_t> content(kBlockSize);
  {
    ASSIGN_OR_RETURN(BufferCache::Ref old, cache_->Get(blockno));
    std::memcpy(content.data(), old.data(), kBlockSize);
  }
  RETURN_IF_ERROR(LogWholeBlock(txn, newb, content));
  // The copy now also references every child: one extra physical parent each.
  for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
    uint64_t child = GetPtr(content.data(), i);
    if (child != 0) {
      RETURN_IF_ERROR(IncRef(txn, child));
    }
  }
  RETURN_IF_ERROR(DecRef(txn, blockno, nullptr));
  return newb;
}

Status Aggregate::IncAnodeTableLeafChildren(const TxnToken& txn, uint64_t blockno) {
  std::vector<uint8_t> content(kBlockSize);
  {
    ASSIGN_OR_RETURN(BufferCache::Ref buf, cache_->Get(blockno));
    std::memcpy(content.data(), buf.data(), kBlockSize);
  }
  for (uint32_t i = 0; i < kAnodesPerBlock; ++i) {
    AnodeRecord a = AnodeRecord::Decode(
        std::span<const uint8_t>(content.data() + i * kAnodeSize, kAnodeSize));
    if (a.type == AnodeType::kFree) {
      continue;
    }
    for (uint32_t d = 0; d < kDirectBlocks; ++d) {
      if (a.direct[d] != 0) {
        RETURN_IF_ERROR(IncRef(txn, a.direct[d]));
      }
    }
    if (a.indirect != 0) {
      RETURN_IF_ERROR(IncRef(txn, a.indirect));
    }
    if (a.dindirect != 0) {
      RETURN_IF_ERROR(IncRef(txn, a.dindirect));
    }
  }
  return Status::Ok();
}

Status Aggregate::FreeAnodeTreesInLeaf(const TxnToken& txn, uint64_t blockno) {
  std::vector<uint8_t> content(kBlockSize);
  {
    ASSIGN_OR_RETURN(BufferCache::Ref buf, cache_->Get(blockno));
    std::memcpy(content.data(), buf.data(), kBlockSize);
  }
  for (uint32_t i = 0; i < kAnodesPerBlock; ++i) {
    AnodeRecord a = AnodeRecord::Decode(
        std::span<const uint8_t>(content.data() + i * kAnodeSize, kAnodeSize));
    if (a.type == AnodeType::kFree) {
      continue;
    }
    Kind kind = KindForAnode(a.type);
    for (uint32_t d = 0; d < kDirectBlocks; ++d) {
      RETURN_IF_ERROR(FreeSubtree(txn, a.direct[d], 0, kind));
    }
    RETURN_IF_ERROR(FreeSubtree(txn, a.indirect, 1, kind));
    RETURN_IF_ERROR(FreeSubtree(txn, a.dindirect, 2, kind));
  }
  return Status::Ok();
}

Result<uint64_t> Aggregate::CowLeaf(const TxnToken& txn, uint64_t blockno, Kind kind) {
  ASSIGN_OR_RETURN(uint64_t newb, AllocBlock(txn));
  std::vector<uint8_t> content(kBlockSize);
  {
    ASSIGN_OR_RETURN(BufferCache::Ref old, cache_->Get(blockno));
    std::memcpy(content.data(), old.data(), kBlockSize);
  }
  if (kind == Kind::kData) {
    ASSIGN_OR_RETURN(BufferCache::Ref buf, cache_->GetZeroed(newb));
    std::memcpy(buf.data(), content.data(), kBlockSize);
    cache_->MarkDirty(buf, 0);
  } else {
    RETURN_IF_ERROR(LogWholeBlock(txn, newb, content));
    if (kind == Kind::kAnodeTable) {
      RETURN_IF_ERROR(IncAnodeTableLeafChildren(txn, newb));
    }
  }
  RETURN_IF_ERROR(DecRef(txn, blockno, nullptr));
  return newb;
}

// --- Block-map navigation ---

Result<uint64_t> Aggregate::MapBlockForRead(const AnodeRecord& desc, uint64_t fblock) {
  if (fblock < kDirectBlocks) {
    return desc.direct[fblock];
  }
  fblock -= kDirectBlocks;
  if (fblock < kPtrsPerBlock) {
    if (desc.indirect == 0) {
      return uint64_t{0};
    }
    ASSIGN_OR_RETURN(BufferCache::Ref buf, cache_->Get(desc.indirect));
    return GetPtr(buf.data(), static_cast<uint32_t>(fblock));
  }
  fblock -= kPtrsPerBlock;
  if (fblock < uint64_t{kPtrsPerBlock} * kPtrsPerBlock) {
    if (desc.dindirect == 0) {
      return uint64_t{0};
    }
    uint64_t l1;
    {
      ASSIGN_OR_RETURN(BufferCache::Ref buf, cache_->Get(desc.dindirect));
      l1 = GetPtr(buf.data(), static_cast<uint32_t>(fblock / kPtrsPerBlock));
    }
    if (l1 == 0) {
      return uint64_t{0};
    }
    ASSIGN_OR_RETURN(BufferCache::Ref buf, cache_->Get(l1));
    return GetPtr(buf.data(), static_cast<uint32_t>(fblock % kPtrsPerBlock));
  }
  return Status(ErrorCode::kInvalidArgument, "offset beyond maximum container size");
}

Result<uint64_t> Aggregate::MapBlockForWrite(const TxnToken& txn, AnodeRecord& desc, Kind kind,
                                             uint64_t fblock, bool* desc_changed) {
  auto ensure_leaf = [&](uint64_t cur) -> Result<uint64_t> {
    if (cur == 0) {
      if (kind == Kind::kData) {
        ASSIGN_OR_RETURN(uint64_t b, AllocBlock(txn));
        ASSIGN_OR_RETURN(BufferCache::Ref buf, cache_->GetZeroed(b));
        cache_->MarkDirty(buf, 0);
        return b;
      }
      return AllocMetaBlockZeroed(txn);
    }
    ASSIGN_OR_RETURN(uint16_t rc, GetRefcount(cur));
    if (rc > 1) {
      return CowLeaf(txn, cur, kind);
    }
    return cur;
  };
  auto ensure_interior = [&](uint64_t cur) -> Result<uint64_t> {
    if (cur == 0) {
      return AllocMetaBlockZeroed(txn);
    }
    ASSIGN_OR_RETURN(uint16_t rc, GetRefcount(cur));
    if (rc > 1) {
      return CowInterior(txn, cur);
    }
    return cur;
  };

  if (fblock < kDirectBlocks) {
    ASSIGN_OR_RETURN(uint64_t leaf, ensure_leaf(desc.direct[fblock]));
    if (leaf != desc.direct[fblock]) {
      desc.direct[fblock] = leaf;
      *desc_changed = true;
    }
    return leaf;
  }
  uint64_t rel = fblock - kDirectBlocks;
  if (rel < kPtrsPerBlock) {
    ASSIGN_OR_RETURN(uint64_t ind, ensure_interior(desc.indirect));
    if (ind != desc.indirect) {
      desc.indirect = ind;
      *desc_changed = true;
    }
    uint64_t cur;
    {
      ASSIGN_OR_RETURN(BufferCache::Ref buf, cache_->Get(ind));
      cur = GetPtr(buf.data(), static_cast<uint32_t>(rel));
    }
    ASSIGN_OR_RETURN(uint64_t leaf, ensure_leaf(cur));
    if (leaf != cur) {
      auto enc = EncodePtr(leaf);
      RETURN_IF_ERROR(LogBlockBytes(txn, ind, static_cast<uint32_t>(rel * 8), enc));
    }
    return leaf;
  }
  rel -= kPtrsPerBlock;
  if (rel >= uint64_t{kPtrsPerBlock} * kPtrsPerBlock) {
    return Status(ErrorCode::kInvalidArgument, "offset beyond maximum container size");
  }
  ASSIGN_OR_RETURN(uint64_t dind, ensure_interior(desc.dindirect));
  if (dind != desc.dindirect) {
    desc.dindirect = dind;
    *desc_changed = true;
  }
  uint32_t i1 = static_cast<uint32_t>(rel / kPtrsPerBlock);
  uint32_t i0 = static_cast<uint32_t>(rel % kPtrsPerBlock);
  uint64_t l1cur;
  {
    ASSIGN_OR_RETURN(BufferCache::Ref buf, cache_->Get(dind));
    l1cur = GetPtr(buf.data(), i1);
  }
  ASSIGN_OR_RETURN(uint64_t l1, ensure_interior(l1cur));
  if (l1 != l1cur) {
    auto enc = EncodePtr(l1);
    RETURN_IF_ERROR(LogBlockBytes(txn, dind, i1 * 8, enc));
  }
  uint64_t cur;
  {
    ASSIGN_OR_RETURN(BufferCache::Ref buf, cache_->Get(l1));
    cur = GetPtr(buf.data(), i0);
  }
  ASSIGN_OR_RETURN(uint64_t leaf, ensure_leaf(cur));
  if (leaf != cur) {
    auto enc = EncodePtr(leaf);
    RETURN_IF_ERROR(LogBlockBytes(txn, l1, i0 * 8, enc));
  }
  return leaf;
}

Status Aggregate::FreeSubtree(const TxnToken& txn, uint64_t ptr, int level, Kind kind) {
  if (ptr == 0) {
    return Status::Ok();
  }
  ASSIGN_OR_RETURN(uint16_t rc, GetRefcount(ptr));
  if (rc == 1) {
    if (level > 0) {
      std::vector<uint8_t> content(kBlockSize);
      {
        ASSIGN_OR_RETURN(BufferCache::Ref buf, cache_->Get(ptr));
        std::memcpy(content.data(), buf.data(), kBlockSize);
      }
      for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
        uint64_t child = GetPtr(content.data(), i);
        if (child != 0) {
          RETURN_IF_ERROR(FreeSubtree(txn, child, level - 1, kind));
        }
      }
    } else if (kind == Kind::kAnodeTable) {
      RETURN_IF_ERROR(FreeAnodeTreesInLeaf(txn, ptr));
    }
  }
  return DecRef(txn, ptr, nullptr);
}

Status Aggregate::TruncSubtree(const TxnToken& txn, uint64_t* slot, int level, uint64_t base_fblock,
                               uint64_t keep_blocks, Kind kind, bool* changed) {
  if (*slot == 0) {
    return Status::Ok();
  }
  uint64_t span = 1;
  for (int l = 0; l < level; ++l) {
    span *= kPtrsPerBlock;
  }
  if (keep_blocks <= base_fblock) {
    RETURN_IF_ERROR(FreeSubtree(txn, *slot, level, kind));
    *slot = 0;
    *changed = true;
    return Status::Ok();
  }
  if (base_fblock + span <= keep_blocks || level == 0) {
    return Status::Ok();  // fully kept
  }
  // Partially kept interior: privatize, then recurse into children.
  ASSIGN_OR_RETURN(uint16_t rc, GetRefcount(*slot));
  if (rc > 1) {
    ASSIGN_OR_RETURN(*slot, CowInterior(txn, *slot));
    *changed = true;
  }
  std::vector<uint8_t> content(kBlockSize);
  {
    ASSIGN_OR_RETURN(BufferCache::Ref buf, cache_->Get(*slot));
    std::memcpy(content.data(), buf.data(), kBlockSize);
  }
  uint64_t child_span = span / kPtrsPerBlock;
  for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
    uint64_t ptr = GetPtr(content.data(), i);
    if (ptr == 0) {
      continue;
    }
    uint64_t child_base = base_fblock + i * child_span;
    uint64_t newptr = ptr;
    bool sub_changed = false;
    RETURN_IF_ERROR(
        TruncSubtree(txn, &newptr, level - 1, child_base, keep_blocks, kind, &sub_changed));
    if (newptr != ptr) {
      auto enc = EncodePtr(newptr);
      RETURN_IF_ERROR(LogBlockBytes(txn, *slot, i * 8, enc));
    }
  }
  return Status::Ok();
}

Status Aggregate::CountSubtree(uint64_t ptr, int level, Kind kind, uint64_t* count) {
  if (ptr == 0) {
    return Status::Ok();
  }
  ++*count;
  if (level > 0) {
    std::vector<uint8_t> content(kBlockSize);
    {
      ASSIGN_OR_RETURN(BufferCache::Ref buf, cache_->Get(ptr));
      std::memcpy(content.data(), buf.data(), kBlockSize);
    }
    for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
      uint64_t child = GetPtr(content.data(), i);
      if (child != 0) {
        RETURN_IF_ERROR(CountSubtree(child, level - 1, kind, count));
      }
    }
  } else if (kind == Kind::kAnodeTable) {
    std::vector<uint8_t> content(kBlockSize);
    {
      ASSIGN_OR_RETURN(BufferCache::Ref buf, cache_->Get(ptr));
      std::memcpy(content.data(), buf.data(), kBlockSize);
    }
    for (uint32_t i = 0; i < kAnodesPerBlock; ++i) {
      AnodeRecord a = AnodeRecord::Decode(
          std::span<const uint8_t>(content.data() + i * kAnodeSize, kAnodeSize));
      if (a.type == AnodeType::kFree) {
        continue;
      }
      Kind child_kind = KindForAnode(a.type);
      for (uint32_t d = 0; d < kDirectBlocks; ++d) {
        RETURN_IF_ERROR(CountSubtree(a.direct[d], 0, child_kind, count));
      }
      RETURN_IF_ERROR(CountSubtree(a.indirect, 1, child_kind, count));
      RETURN_IF_ERROR(CountSubtree(a.dindirect, 2, child_kind, count));
    }
  }
  return Status::Ok();
}

Result<uint64_t> Aggregate::CountTreeBlocks(const AnodeRecord& desc, Kind kind) {
  uint64_t count = 0;
  for (uint32_t d = 0; d < kDirectBlocks; ++d) {
    RETURN_IF_ERROR(CountSubtree(desc.direct[d], 0, kind, &count));
  }
  RETURN_IF_ERROR(CountSubtree(desc.indirect, 1, kind, &count));
  RETURN_IF_ERROR(CountSubtree(desc.dindirect, 2, kind, &count));
  return count;
}

Status Aggregate::ShareTopLevel(const TxnToken& txn, const AnodeRecord& desc) {
  for (uint32_t d = 0; d < kDirectBlocks; ++d) {
    if (desc.direct[d] != 0) {
      RETURN_IF_ERROR(IncRef(txn, desc.direct[d]));
    }
  }
  if (desc.indirect != 0) {
    RETURN_IF_ERROR(IncRef(txn, desc.indirect));
  }
  if (desc.dindirect != 0) {
    RETURN_IF_ERROR(IncRef(txn, desc.dindirect));
  }
  return Status::Ok();
}

// --- Container byte I/O ---

Status Aggregate::ReadContainer(const AnodeRecord& desc, uint64_t offset,
                                std::span<uint8_t> out) {
  size_t done = 0;
  while (done < out.size()) {
    uint64_t pos = offset + done;
    uint64_t fblock = pos / kBlockSize;
    uint32_t boff = static_cast<uint32_t>(pos % kBlockSize);
    size_t chunk = std::min<size_t>(kBlockSize - boff, out.size() - done);
    ASSIGN_OR_RETURN(uint64_t blockno, MapBlockForRead(desc, fblock));
    if (blockno == 0) {
      std::memset(out.data() + done, 0, chunk);
    } else {
      ASSIGN_OR_RETURN(BufferCache::Ref buf, cache_->Get(blockno));
      std::memcpy(out.data() + done, buf.data() + boff, chunk);
    }
    done += chunk;
  }
  return Status::Ok();
}

Status Aggregate::WriteContainer(const TxnToken& txn, AnodeRecord& desc, Kind kind, uint64_t offset,
                                 std::span<const uint8_t> data, bool* desc_changed) {
  size_t done = 0;
  while (done < data.size()) {
    uint64_t pos = offset + done;
    uint64_t fblock = pos / kBlockSize;
    uint32_t boff = static_cast<uint32_t>(pos % kBlockSize);
    size_t chunk = std::min<size_t>(kBlockSize - boff, data.size() - done);
    ASSIGN_OR_RETURN(uint64_t blockno, MapBlockForWrite(txn, desc, kind, fblock, desc_changed));
    if (kind == Kind::kData) {
      ASSIGN_OR_RETURN(BufferCache::Ref buf, cache_->Get(blockno));
      std::memcpy(buf.data() + boff, data.data() + done, chunk);
      cache_->MarkDirty(buf, 0);
    } else {
      RETURN_IF_ERROR(LogBlockBytes(txn, blockno, boff,
                                    std::span<const uint8_t>(data.data() + done, chunk)));
    }
    done += chunk;
  }
  if (offset + data.size() > desc.size) {
    desc.size = offset + data.size();
    *desc_changed = true;
  }
  return Status::Ok();
}

Status Aggregate::TruncateContainer(const TxnToken& txn, AnodeRecord& desc, Kind kind,
                                    uint64_t new_size, bool* desc_changed) {
  if (new_size >= desc.size) {
    if (new_size > desc.size) {
      desc.size = new_size;  // extension creates a hole
      *desc_changed = true;
    }
    return Status::Ok();
  }
  // Zero the tail of the last kept block so a later extension reads zeros.
  uint32_t tail = static_cast<uint32_t>(new_size % kBlockSize);
  if (tail != 0) {
    ASSIGN_OR_RETURN(uint64_t blockno, MapBlockForRead(desc, new_size / kBlockSize));
    if (blockno != 0) {
      std::vector<uint8_t> zeros(kBlockSize - tail, 0);
      RETURN_IF_ERROR(WriteContainer(txn, desc, kind, new_size, zeros, desc_changed));
    }
  }
  uint64_t keep = (new_size + kBlockSize - 1) / kBlockSize;
  for (uint32_t d = 0; d < kDirectBlocks; ++d) {
    if (desc.direct[d] != 0 && keep <= d) {
      RETURN_IF_ERROR(FreeSubtree(txn, desc.direct[d], 0, kind));
      desc.direct[d] = 0;
      *desc_changed = true;
    }
  }
  RETURN_IF_ERROR(TruncSubtree(txn, &desc.indirect, 1, kDirectBlocks, keep, kind, desc_changed));
  RETURN_IF_ERROR(TruncSubtree(txn, &desc.dindirect, 2, kDirectBlocks + kPtrsPerBlock, keep,
                               kind, desc_changed));
  desc.size = new_size;
  *desc_changed = true;
  return Status::Ok();
}

// --- Anode access ---

Result<AnodeRecord> Aggregate::ReadAnode(const VolumeSlot& vol, uint64_t vnode) {
  if (vnode == 0 || vnode >= vol.anode_count) {
    return Status(ErrorCode::kStale, "vnode index out of range");
  }
  std::vector<uint8_t> bytes(kAnodeSize);
  RETURN_IF_ERROR(ReadContainer(vol.table, vnode * kAnodeSize, bytes));
  return AnodeRecord::Decode(bytes);
}

Status Aggregate::WriteAnode(const TxnToken& txn, uint32_t slot_index, VolumeSlot& vol,
                             uint64_t vnode, const AnodeRecord& rec) {
  if (vnode == 0 || vnode >= vol.anode_count) {
    return Status(ErrorCode::kStale, "vnode index out of range");
  }
  std::vector<uint8_t> bytes(kAnodeSize);
  rec.Encode(bytes);
  bool changed = false;
  RETURN_IF_ERROR(
      WriteContainer(txn, vol.table, Kind::kAnodeTable, vnode * kAnodeSize, bytes, &changed));
  if (changed) {
    RETURN_IF_ERROR(WriteSlot(txn, slot_index, vol));
  }
  return Status::Ok();
}

Result<uint64_t> Aggregate::BumpVersion(const TxnToken& txn, uint32_t slot_index, VolumeSlot& vol) {
  vol.version_counter += 1;
  RETURN_IF_ERROR(WriteSlot(txn, slot_index, vol));
  return vol.version_counter;
}

Status Aggregate::PrivatizeAnode(const TxnToken& txn, uint32_t slot_index, VolumeSlot& vol,
                                 uint64_t vnode) {
  ASSIGN_OR_RETURN(AnodeRecord rec, ReadAnode(vol, vnode));
  return WriteAnode(txn, slot_index, vol, vnode, rec);
}

Result<uint64_t> Aggregate::AllocAnode(const TxnToken& txn, uint32_t slot_index, VolumeSlot& vol,
                                       AnodeType type, const AnodeRecord& init) {
  op_mu_.AssertHeld();  // reached only from inside a RunTxn/RunTxnLocked body
  uint64_t& hint = anode_hint_[vol.volume_id];
  if (hint == 0 || hint >= vol.anode_count) {
    hint = 1;
  }
  for (uint64_t pass = 0; pass < 2; ++pass) {
    uint64_t from = (pass == 0) ? hint : 1;
    uint64_t to = (pass == 0) ? vol.anode_count : hint;
    for (uint64_t v = from; v < to; ++v) {
      ASSIGN_OR_RETURN(AnodeRecord cur, ReadAnode(vol, v));
      if (cur.type == AnodeType::kFree) {
        AnodeRecord rec = init;
        rec.type = type;
        rec.uniq = vol.next_uniq++;
        RETURN_IF_ERROR(WriteAnode(txn, slot_index, vol, v, rec));
        RETURN_IF_ERROR(WriteSlot(txn, slot_index, vol));  // persist next_uniq
        hint = v + 1;
        return v;
      }
    }
  }
  return Status(ErrorCode::kNoAnodes, "volume anode table full");
}

Status Aggregate::AllocAnodeAt(const TxnToken& txn, uint32_t slot_index, VolumeSlot& vol,
                               uint64_t vnode, const AnodeRecord& init) {
  ASSIGN_OR_RETURN(AnodeRecord cur, ReadAnode(vol, vnode));
  if (cur.type != AnodeType::kFree) {
    return Status(ErrorCode::kExists, "anode slot in use");
  }
  RETURN_IF_ERROR(WriteAnode(txn, slot_index, vol, vnode, init));
  if (init.uniq >= vol.next_uniq) {
    vol.next_uniq = init.uniq + 1;
    RETURN_IF_ERROR(WriteSlot(txn, slot_index, vol));
  }
  return Status::Ok();
}

Status Aggregate::FreeAnode(const TxnToken& txn, uint32_t slot_index, VolumeSlot& vol,
                            uint64_t vnode) {
  ASSIGN_OR_RETURN(AnodeRecord rec, ReadAnode(vol, vnode));
  if (rec.type == AnodeType::kFree) {
    return Status::Ok();
  }
  if (rec.acl_vnode != 0) {
    RETURN_IF_ERROR(FreeAnode(txn, slot_index, vol, rec.acl_vnode));
  }
  // Order matters: writing the freed anode first privatizes the table block
  // (incrementing children for the clone's benefit); only then is it safe to
  // release this volume's references to the block tree.
  AnodeRecord zero;
  RETURN_IF_ERROR(WriteAnode(txn, slot_index, vol, vnode, zero));
  Kind kind = KindForAnode(rec.type);
  for (uint32_t d = 0; d < kDirectBlocks; ++d) {
    RETURN_IF_ERROR(FreeSubtree(txn, rec.direct[d], 0, kind));
  }
  RETURN_IF_ERROR(FreeSubtree(txn, rec.indirect, 1, kind));
  RETURN_IF_ERROR(FreeSubtree(txn, rec.dindirect, 2, kind));
  return Status::Ok();
}

// --- Directory helpers ---

Status Aggregate::DirAddEntry(const TxnToken& txn, AnodeRecord& dir_an, const DirSlot& entry,
                              bool* desc_changed) {
  if (entry.name.empty() || entry.name.size() > kMaxNameLen) {
    return Status(ErrorCode::kNameTooLong, "directory entry name length invalid");
  }
  uint64_t nslots = dir_an.size / kDirEntrySize;
  std::vector<uint8_t> bytes(kDirEntrySize);
  std::optional<uint64_t> free_slot;
  for (uint64_t i = 0; i < nslots; ++i) {
    RETURN_IF_ERROR(ReadContainer(dir_an, i * kDirEntrySize, bytes));
    DirSlot d = DirSlot::Decode(bytes);
    if (d.in_use != 0) {
      if (d.name == entry.name) {
        return Status(ErrorCode::kExists, "entry exists: " + entry.name);
      }
    } else if (!free_slot.has_value()) {
      free_slot = i;
    }
  }
  uint64_t slot = free_slot.value_or(nslots);
  DirSlot d = entry;
  d.in_use = 1;
  d.Encode(bytes);
  return WriteContainer(txn, dir_an, Kind::kMeta, slot * kDirEntrySize, bytes, desc_changed);
}

Result<DirSlot> Aggregate::DirFind(const AnodeRecord& dir_an, std::string_view name) {
  uint64_t nslots = dir_an.size / kDirEntrySize;
  std::vector<uint8_t> bytes(kDirEntrySize);
  for (uint64_t i = 0; i < nslots; ++i) {
    RETURN_IF_ERROR(ReadContainer(dir_an, i * kDirEntrySize, bytes));
    DirSlot d = DirSlot::Decode(bytes);
    if (d.in_use != 0 && d.name == name) {
      return d;
    }
  }
  return Status(ErrorCode::kNotFound, "no such entry: " + std::string(name));
}

Status Aggregate::DirRemoveEntry(const TxnToken& txn, AnodeRecord& dir_an, std::string_view name,
                                 bool* desc_changed) {
  uint64_t nslots = dir_an.size / kDirEntrySize;
  std::vector<uint8_t> bytes(kDirEntrySize);
  for (uint64_t i = 0; i < nslots; ++i) {
    RETURN_IF_ERROR(ReadContainer(dir_an, i * kDirEntrySize, bytes));
    DirSlot d = DirSlot::Decode(bytes);
    if (d.in_use != 0 && d.name == name) {
      std::fill(bytes.begin(), bytes.end(), uint8_t{0});
      return WriteContainer(txn, dir_an, Kind::kMeta, i * kDirEntrySize, bytes, desc_changed);
    }
  }
  return Status(ErrorCode::kNotFound, "no such entry: " + std::string(name));
}

Status Aggregate::DirUpdateEntry(const TxnToken& txn, AnodeRecord& dir_an, std::string_view name,
                                 uint64_t vnode, uint64_t uniq, uint8_t type,
                                 bool* desc_changed) {
  uint64_t nslots = dir_an.size / kDirEntrySize;
  std::vector<uint8_t> bytes(kDirEntrySize);
  for (uint64_t i = 0; i < nslots; ++i) {
    RETURN_IF_ERROR(ReadContainer(dir_an, i * kDirEntrySize, bytes));
    DirSlot d = DirSlot::Decode(bytes);
    if (d.in_use != 0 && d.name == name) {
      d.vnode = vnode;
      d.uniq = uniq;
      d.type = type;
      d.Encode(bytes);
      return WriteContainer(txn, dir_an, Kind::kMeta, i * kDirEntrySize, bytes, desc_changed);
    }
  }
  return Status(ErrorCode::kNotFound, "no such entry: " + std::string(name));
}

Result<std::vector<DirSlot>> Aggregate::DirList(const AnodeRecord& dir_an) {
  uint64_t nslots = dir_an.size / kDirEntrySize;
  std::vector<uint8_t> bytes(kDirEntrySize);
  std::vector<DirSlot> out;
  for (uint64_t i = 0; i < nslots; ++i) {
    RETURN_IF_ERROR(ReadContainer(dir_an, i * kDirEntrySize, bytes));
    DirSlot d = DirSlot::Decode(bytes);
    if (d.in_use != 0) {
      out.push_back(std::move(d));
    }
  }
  return out;
}

Result<bool> Aggregate::DirIsEmpty(const AnodeRecord& dir_an) {
  ASSIGN_OR_RETURN(std::vector<DirSlot> entries, DirList(dir_an));
  for (const DirSlot& d : entries) {
    if (d.name != "." && d.name != "..") {
      return false;
    }
  }
  return true;
}

}  // namespace dfs

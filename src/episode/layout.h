// On-disk layout of an Episode aggregate.
//
// Everything that uses disk storage is described by an *anode* — a small
// descriptor for an open-ended container of disk blocks (Section 2.4): files,
// directories, symlinks, ACLs, and each volume's anode table. Two structures
// use fixed extents recorded in the superblock rather than anodes — the block
// reference-count table (the allocation structure; refcount 0 = free) and the
// log area — because they bootstrap everything else.
//
// Aggregate block layout (established by Format):
//
//   block 0                      superblock
//   blocks 1 .. rc_blocks        block reference-count table (u16 per block)
//   next log_blocks blocks       WAL area (1 header + data)
//   next block                   first registry block
//   remainder                    allocatable
//
// Copy-on-write uses *tree reference counts*: a block's refcount equals the
// number of physical parent blocks (or descriptors) referencing it. Cloning a
// volume therefore only increments the counts of the table container's top
// pointers — O(1) block touches — and sharing propagates lazily as parents
// are copied on write.
#ifndef SRC_EPISODE_LAYOUT_H_
#define SRC_EPISODE_LAYOUT_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>

#include "src/blockdev/block_device.h"
#include "src/common/status.h"
#include "src/vfs/types.h"

namespace dfs {

inline constexpr uint64_t kAggregateMagic = 0xE215'0DE0'A66Eull;
inline constexpr uint32_t kAggregateVersion = 1;

inline constexpr uint32_t kAnodeSize = 256;
inline constexpr uint32_t kAnodesPerBlock = kBlockSize / kAnodeSize;  // 16
inline constexpr uint32_t kDirectBlocks = 6;
inline constexpr uint32_t kPtrsPerBlock = kBlockSize / 8;  // 512
// Max container size: 6 + 512 + 512*512 blocks (~1 GiB at 4 KiB blocks).
inline constexpr uint64_t kMaxContainerBlocks =
    kDirectBlocks + kPtrsPerBlock + uint64_t{kPtrsPerBlock} * kPtrsPerBlock;

enum class AnodeType : uint8_t {
  kFree = 0,
  kFile = 1,
  kDirectory = 2,
  kSymlink = 3,
  kAcl = 4,
  kAnodeTable = 5,  // a volume's anode table (leaf blocks hold anodes)
};

// In-memory mirror of the 256-byte on-disk anode. Also used as the container
// descriptor embedded in volume-registry slots and the superblock.
struct AnodeRecord {
  AnodeType type = AnodeType::kFree;
  uint8_t flags = 0;
  uint16_t nlink = 0;
  uint32_t mode = 0;
  uint32_t uid = 0;
  uint32_t gid = 0;
  uint64_t size = 0;  // container size in bytes
  uint64_t mtime = 0;
  uint64_t ctime = 0;
  uint64_t atime = 0;
  uint64_t data_version = 0;
  uint64_t acl_vnode = 0;  // vnode of the ACL anode, 0 = none
  uint64_t uniq = 0;
  uint64_t direct[kDirectBlocks] = {};
  uint64_t indirect = 0;
  uint64_t dindirect = 0;

  void Encode(std::span<uint8_t> out) const;  // out.size() >= kAnodeSize
  static AnodeRecord Decode(std::span<const uint8_t> in);

  uint64_t BlockCount() const { return (size + kBlockSize - 1) / kBlockSize; }
};

// Volume registry slot, 512 bytes, 8 per block.
inline constexpr uint32_t kVolumeSlotSize = 512;
inline constexpr uint32_t kSlotsPerBlock = kBlockSize / kVolumeSlotSize;
inline constexpr uint32_t kMaxVolumeName = 64;

inline constexpr uint8_t kVolFlagReadOnly = 1u << 0;
inline constexpr uint8_t kVolFlagClone = 1u << 1;
inline constexpr uint8_t kVolFlagBusy = 1u << 2;  // move/clone in progress

struct VolumeSlot {
  uint64_t volume_id = 0;  // 0 = free slot
  uint8_t flags = 0;
  std::string name;
  uint64_t root_vnode = 0;
  uint64_t next_uniq = 1;
  uint64_t backing_volume = 0;
  uint64_t anode_count = 0;  // capacity of the anode table, in anodes
  // Per-volume mutation stamp. Every mutating operation takes the next value
  // and records it as the touched file's data_version, so "changed since V"
  // queries (incremental replication, cache validation) are globally ordered
  // within the volume — including newly created files.
  uint64_t version_counter = 0;
  AnodeRecord table;  // the anode-table container descriptor

  void Encode(std::span<uint8_t> out) const;  // out.size() >= kVolumeSlotSize
  static VolumeSlot Decode(std::span<const uint8_t> in);
};

// Superblock, serialized into block 0.
struct Superblock {
  uint64_t magic = kAggregateMagic;
  uint32_t version = kAggregateVersion;
  uint32_t clean = 0;
  uint64_t block_count = 0;
  uint64_t next_volume_id = 1;
  uint64_t free_blocks = 0;
  uint64_t rc_start = 0;
  uint64_t rc_blocks = 0;
  uint64_t log_start = 0;
  uint64_t log_blocks = 0;
  AnodeRecord registry;  // volume registry container descriptor

  static constexpr uint32_t kEncodedSize = 72 + kAnodeSize;

  void Encode(std::span<uint8_t> out) const;  // out.size() >= kEncodedSize
  static Result<Superblock> Decode(std::span<const uint8_t> in);
};

// Directory entry, 80 bytes, 51 per block.
inline constexpr uint32_t kDirEntrySize = 80;
inline constexpr uint32_t kDirEntriesPerBlock = kBlockSize / kDirEntrySize;

struct DirSlot {
  uint64_t vnode = 0;
  uint64_t uniq = 0;
  uint8_t in_use = 0;
  uint8_t type = 0;
  std::string name;

  void Encode(std::span<uint8_t> out) const;  // out.size() >= kDirEntrySize
  static DirSlot Decode(std::span<const uint8_t> in);
};

}  // namespace dfs

#endif  // SRC_EPISODE_LAYOUT_H_

// VFS+ volume operations on an Episode aggregate (Sections 2.1, 3.6, 3.8):
// create, delete, clone (O(1) copy-on-write snapshot), mount, dump/restore
// (the transport for volume moves and lazy replication), delta application.
#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "src/episode/aggregate.h"
#include "src/episode/volume.h"

namespace dfs {

namespace {

AnodeType AnodeTypeFor(FileType t) {
  switch (t) {
    case FileType::kDirectory:
      return AnodeType::kDirectory;
    case FileType::kSymlink:
      return AnodeType::kSymlink;
    default:
      return AnodeType::kFile;
  }
}

FileType FileTypeFor(AnodeType t) {
  switch (t) {
    case AnodeType::kDirectory:
      return FileType::kDirectory;
    case AnodeType::kSymlink:
      return FileType::kSymlink;
    default:
      return FileType::kFile;
  }
}

}  // namespace

Result<uint64_t> Aggregate::CreateVolumeLocked(std::string_view name, uint64_t forced_id) {
  uint64_t new_id = 0;
  Status s = RunTxnLocked([&](const TxnToken& txn) -> Status {
    txn.AssertIssued();
    ASSIGN_OR_RETURN(Superblock sb, ReadSuper());
    if (forced_id != 0) {
      new_id = forced_id;
      if (forced_id >= sb.next_volume_id) {
        sb.next_volume_id = forced_id + 1;
        RETURN_IF_ERROR(WriteSuper(txn, sb));
      }
    } else {
      new_id = sb.next_volume_id;
      sb.next_volume_id += 1;
      RETURN_IF_ERROR(WriteSuper(txn, sb));
    }

    // Find a free registry slot (or extend the registry).
    uint32_t nslots = static_cast<uint32_t>(sb.registry.size / kVolumeSlotSize);
    uint32_t slot_index = nslots;
    std::vector<uint8_t> bytes(kVolumeSlotSize);
    for (uint32_t i = 0; i < nslots; ++i) {
      RETURN_IF_ERROR(ReadContainer(sb.registry, uint64_t{i} * kVolumeSlotSize, bytes));
      if (VolumeSlot::Decode(bytes).volume_id == 0) {
        slot_index = i;
        break;
      }
    }

    VolumeSlot vol;
    vol.volume_id = new_id;
    vol.name = std::string(name);
    vol.root_vnode = 1;
    vol.next_uniq = 1;
    vol.anode_count = options_.default_anode_count;
    vol.version_counter = 1;  // the root's creation stamp
    vol.table.type = AnodeType::kAnodeTable;
    vol.table.size = vol.anode_count * kAnodeSize;  // sparse: blocks allocate on demand
    RETURN_IF_ERROR(WriteSlot(txn, slot_index, vol));

    AnodeRecord root;
    root.type = AnodeType::kDirectory;
    root.nlink = 2;
    // Fresh volume roots are world-writable; administrators restrict access
    // with ACLs (the DFS convention for newly created home volumes).
    root.mode = 0777;
    root.data_version = 1;
    root.uniq = 1;
    RETURN_IF_ERROR(AllocAnodeAt(txn, slot_index, vol, 1, root));
    ASSIGN_OR_RETURN(root, ReadAnode(vol, 1));
    bool ch = false;
    RETURN_IF_ERROR(DirAddEntry(
        txn, root, DirSlot{1, root.uniq, 1, static_cast<uint8_t>(FileType::kDirectory), "."},
        &ch));
    RETURN_IF_ERROR(DirAddEntry(
        txn, root, DirSlot{1, root.uniq, 1, static_cast<uint8_t>(FileType::kDirectory), ".."},
        &ch));
    return WriteAnode(txn, slot_index, vol, 1, root);
  });
  RETURN_IF_ERROR(s);
  return new_id;
}

Result<uint64_t> Aggregate::CreateVolume(std::string_view name) {
  MutexLock lock(op_mu_);
  return CreateVolumeLocked(name, 0);
}

Status Aggregate::DeleteVolumeLocked(uint64_t volume_id) {
  ASSIGN_OR_RETURN(auto pair, FindVolumeSlot(volume_id));
  VolumeSlot vol = std::move(pair.first);
  uint32_t slot_index = pair.second;
  // Free every anode, one short transaction each (Section 2.2: long operations
  // are chains of short transactions).
  for (uint64_t v = 1; v < vol.anode_count; ++v) {
    ASSIGN_OR_RETURN(AnodeRecord rec, ReadAnode(vol, v));
    if (rec.type == AnodeType::kFree) {
      continue;
    }
    RETURN_IF_ERROR(RunTxnLocked([&](const TxnToken& txn) -> Status {
      txn.AssertIssued();
      return FreeAnode(txn, slot_index, vol, v);
    }));
  }
  // Release the (now empty of live anodes) table's blocks and clear the slot.
  RETURN_IF_ERROR(RunTxnLocked([&](const TxnToken& txn) -> Status {
    txn.AssertIssued();
    for (uint32_t d = 0; d < kDirectBlocks; ++d) {
      RETURN_IF_ERROR(FreeSubtree(txn, vol.table.direct[d], 0, Kind::kAnodeTable));
    }
    RETURN_IF_ERROR(FreeSubtree(txn, vol.table.indirect, 1, Kind::kAnodeTable));
    RETURN_IF_ERROR(FreeSubtree(txn, vol.table.dindirect, 2, Kind::kAnodeTable));
    return WriteSlot(txn, slot_index, VolumeSlot{});
  }));
  anode_hint_.erase(volume_id);
  return Status::Ok();
}

Status Aggregate::DeleteVolume(uint64_t volume_id) {
  MutexLock lock(op_mu_);
  return DeleteVolumeLocked(volume_id);
}

Result<uint64_t> Aggregate::CloneVolume(uint64_t volume_id, std::string_view clone_name) {
  MutexLock lock(op_mu_);
  uint64_t clone_id = 0;
  Status s = RunTxnLocked([&](const TxnToken& txn) -> Status {
    txn.AssertIssued();
    ASSIGN_OR_RETURN(auto pair, FindVolumeSlot(volume_id));
    VolumeSlot src = std::move(pair.first);
    if (src.flags & kVolFlagBusy) {
      return Status(ErrorCode::kBusy, "volume busy");
    }
    ASSIGN_OR_RETURN(Superblock sb, ReadSuper());
    clone_id = sb.next_volume_id;
    sb.next_volume_id += 1;
    RETURN_IF_ERROR(WriteSuper(txn, sb));

    uint32_t nslots = static_cast<uint32_t>(sb.registry.size / kVolumeSlotSize);
    uint32_t slot_index = nslots;
    std::vector<uint8_t> bytes(kVolumeSlotSize);
    for (uint32_t i = 0; i < nslots; ++i) {
      RETURN_IF_ERROR(ReadContainer(sb.registry, uint64_t{i} * kVolumeSlotSize, bytes));
      if (VolumeSlot::Decode(bytes).volume_id == 0) {
        slot_index = i;
        break;
      }
    }

    // The whole clone: share the anode table's top-level blocks (a handful of
    // refcount increments) and write one registry slot. Everything below the
    // shared blocks is copied lazily, on first write, by either volume.
    VolumeSlot clone = src;
    clone.volume_id = clone_id;
    clone.name = std::string(clone_name);
    clone.flags = kVolFlagReadOnly | kVolFlagClone;
    clone.backing_volume = volume_id;
    RETURN_IF_ERROR(ShareTopLevel(txn, clone.table));
    return WriteSlot(txn, slot_index, clone);
  });
  RETURN_IF_ERROR(s);
  return clone_id;
}

Result<std::vector<VolumeInfo>> Aggregate::ListVolumes() {
  MutexLock lock(op_mu_);
  ASSIGN_OR_RETURN(Superblock sb, ReadSuper());
  uint32_t nslots = static_cast<uint32_t>(sb.registry.size / kVolumeSlotSize);
  std::vector<uint8_t> bytes(kVolumeSlotSize);
  std::vector<VolumeInfo> out;
  for (uint32_t i = 0; i < nslots; ++i) {
    RETURN_IF_ERROR(ReadContainer(sb.registry, uint64_t{i} * kVolumeSlotSize, bytes));
    VolumeSlot s = VolumeSlot::Decode(bytes);
    if (s.volume_id == 0) {
      continue;
    }
    VolumeInfo info;
    info.id = s.volume_id;
    info.name = s.name;
    info.read_only = (s.flags & kVolFlagReadOnly) != 0;
    info.is_clone = (s.flags & kVolFlagClone) != 0;
    info.backing_volume = s.backing_volume;
    info.root_vnode = s.root_vnode;
    for (uint64_t v = 1; v < s.anode_count; ++v) {
      ASSIGN_OR_RETURN(AnodeRecord rec, ReadAnode(s, v));
      if (rec.type != AnodeType::kFree) {
        info.anodes_used += 1;
        info.max_data_version = std::max(info.max_data_version, rec.data_version);
      }
    }
    ASSIGN_OR_RETURN(info.blocks_used, CountTreeBlocks(s.table, Kind::kAnodeTable));
    out.push_back(std::move(info));
  }
  return out;
}

Result<VolumeInfo> Aggregate::GetVolume(uint64_t volume_id) {
  ASSIGN_OR_RETURN(std::vector<VolumeInfo> all, ListVolumes());
  for (VolumeInfo& info : all) {
    if (info.id == volume_id) {
      return std::move(info);
    }
  }
  return Status(ErrorCode::kNotFound, "no such volume");
}

Result<VfsRef> Aggregate::MountVolume(uint64_t volume_id) {
  MutexLock lock(op_mu_);
  RETURN_IF_ERROR(FindVolumeSlot(volume_id).status());
  return VfsRef(std::make_shared<EpisodeVfs>(this, volume_id));
}

Status Aggregate::SetVolumeBusy(uint64_t volume_id, bool busy) {
  MutexLock lock(op_mu_);
  return RunTxnLocked([&](const TxnToken& txn) -> Status {
    txn.AssertIssued();
    ASSIGN_OR_RETURN(auto pair, FindVolumeSlot(volume_id));
    VolumeSlot vol = std::move(pair.first);
    if (busy) {
      vol.flags |= kVolFlagBusy;
    } else {
      vol.flags &= static_cast<uint8_t>(~kVolFlagBusy);
    }
    return WriteSlot(txn, pair.second, vol);
  });
}

Result<VolumeDumpFile> Aggregate::DumpOneFile(const VolumeSlot& vol, uint64_t vnode,
                                              const AnodeRecord& an) {
  VolumeDumpFile f;
  f.vnode = vnode;
  f.attr.fid = Fid{vol.volume_id, vnode, an.uniq};
  f.attr.type = FileTypeFor(an.type);
  f.attr.size = an.size;
  f.attr.mode = an.mode;
  f.attr.uid = an.uid;
  f.attr.gid = an.gid;
  f.attr.nlink = an.nlink;
  f.attr.mtime = an.mtime;
  f.attr.ctime = an.ctime;
  f.attr.atime = an.atime;
  f.attr.data_version = an.data_version;
  if (an.acl_vnode != 0) {
    ASSIGN_OR_RETURN(AnodeRecord acl_an, ReadAnode(vol, an.acl_vnode));
    std::vector<uint8_t> bytes(acl_an.size);
    RETURN_IF_ERROR(ReadContainer(acl_an, 0, bytes));
    Reader r(bytes);
    ASSIGN_OR_RETURN(f.acl, Acl::Deserialize(r));
  }
  if (an.type == AnodeType::kDirectory) {
    ASSIGN_OR_RETURN(std::vector<DirSlot> slots, DirList(an));
    for (const DirSlot& s : slots) {
      f.dir_entries.push_back(DirEntry{s.name, s.vnode, s.uniq, static_cast<FileType>(s.type)});
    }
  } else {
    f.data.resize(an.size);
    RETURN_IF_ERROR(ReadContainer(an, 0, f.data));
  }
  return f;
}

Result<VolumeDump> Aggregate::DumpVolume(uint64_t volume_id, uint64_t since_version) {
  MutexLock lock(op_mu_);
  ASSIGN_OR_RETURN(auto pair, FindVolumeSlot(volume_id));
  const VolumeSlot& vol = pair.first;

  VolumeDump dump;
  dump.info.id = vol.volume_id;
  dump.info.name = vol.name;
  dump.info.read_only = (vol.flags & kVolFlagReadOnly) != 0;
  dump.info.is_clone = (vol.flags & kVolFlagClone) != 0;
  dump.info.backing_volume = vol.backing_volume;
  dump.info.root_vnode = vol.root_vnode;
  dump.is_delta = since_version > 0;
  dump.since_version = since_version;

  for (uint64_t v = 1; v < vol.anode_count; ++v) {
    ASSIGN_OR_RETURN(AnodeRecord rec, ReadAnode(vol, v));
    if (rec.type == AnodeType::kFree || rec.type == AnodeType::kAcl) {
      continue;  // ACLs travel with their owning file
    }
    dump.live_vnodes.push_back(v);
    dump.info.anodes_used += 1;
    dump.info.max_data_version = std::max(dump.info.max_data_version, rec.data_version);
    if (rec.data_version > since_version) {
      ASSIGN_OR_RETURN(VolumeDumpFile f, DumpOneFile(vol, v, rec));
      dump.files.push_back(std::move(f));
    }
  }
  return dump;
}

Status Aggregate::RestoreOneFile(const TxnToken& txn, uint32_t slot_index, VolumeSlot& vol,
                                 const VolumeDumpFile& f, bool overwrite) {
  ASSIGN_OR_RETURN(AnodeRecord cur, ReadAnode(vol, f.vnode));
  if (cur.type != AnodeType::kFree) {
    if (!overwrite) {
      return Status(ErrorCode::kExists, "vnode slot occupied during restore");
    }
    RETURN_IF_ERROR(FreeAnode(txn, slot_index, vol, f.vnode));
  }
  AnodeRecord rec;
  rec.type = AnodeTypeFor(f.attr.type);
  rec.nlink = static_cast<uint16_t>(f.attr.nlink);
  rec.mode = f.attr.mode;
  rec.uid = f.attr.uid;
  rec.gid = f.attr.gid;
  rec.mtime = f.attr.mtime;
  rec.ctime = f.attr.ctime;
  rec.atime = f.attr.atime;
  rec.data_version = f.attr.data_version;
  rec.uniq = f.attr.fid.uniq;
  RETURN_IF_ERROR(AllocAnodeAt(txn, slot_index, vol, f.vnode, rec));
  ASSIGN_OR_RETURN(rec, ReadAnode(vol, f.vnode));

  bool ch = false;
  if (f.attr.type == FileType::kDirectory) {
    for (const DirEntry& e : f.dir_entries) {
      RETURN_IF_ERROR(DirAddEntry(
          txn, rec, DirSlot{e.vnode, e.uniq, 1, static_cast<uint8_t>(e.type), e.name}, &ch));
    }
  } else {
    Kind kind = (f.attr.type == FileType::kFile) ? Kind::kData : Kind::kMeta;
    RETURN_IF_ERROR(WriteContainer(txn, rec, kind, 0, f.data, &ch));
  }
  // Persist the block map built above before anything else can move the
  // table blocks underneath us.
  RETURN_IF_ERROR(WriteAnode(txn, slot_index, vol, f.vnode, rec));
  if (!f.acl.empty()) {
    AnodeRecord init;
    init.nlink = 1;
    init.data_version = 1;
    ASSIGN_OR_RETURN(uint64_t acl_vnode,
                     AllocAnode(txn, slot_index, vol, AnodeType::kAcl, init));
    ASSIGN_OR_RETURN(AnodeRecord acl_an, ReadAnode(vol, acl_vnode));
    Writer w;
    f.acl.Serialize(w);
    bool ach = false;
    RETURN_IF_ERROR(WriteContainer(txn, acl_an, Kind::kMeta, 0, w.data(), &ach));
    RETURN_IF_ERROR(WriteAnode(txn, slot_index, vol, acl_vnode, acl_an));
    ASSIGN_OR_RETURN(AnodeRecord fresh, ReadAnode(vol, f.vnode));
    fresh.acl_vnode = acl_vnode;
    RETURN_IF_ERROR(WriteAnode(txn, slot_index, vol, f.vnode, fresh));
  }
  return Status::Ok();
}

Result<uint64_t> Aggregate::RestoreVolume(const VolumeDump& dump) {
  MutexLock lock(op_mu_);
  uint64_t forced = dump.info.id;
  if (FindVolumeSlot(forced).ok()) {
    forced = 0;  // id collision on this aggregate: allocate a fresh one
  }
  ASSIGN_OR_RETURN(uint64_t new_id, CreateVolumeLocked(dump.info.name, forced));
  ASSIGN_OR_RETURN(auto pair, FindVolumeSlot(new_id));
  VolumeSlot vol = std::move(pair.first);
  uint32_t slot_index = pair.second;
  for (const VolumeDumpFile& f : dump.files) {
    RETURN_IF_ERROR(RunTxnLocked([&](const TxnToken& txn) -> Status {
      txn.AssertIssued();
      return RestoreOneFile(txn, slot_index, vol, f, /*overwrite=*/true);
    }));
  }
  // Restore volume-level flags last (a read-only flag would block the loads).
  RETURN_IF_ERROR(RunTxnLocked([&](const TxnToken& txn) -> Status {
    txn.AssertIssued();
    vol.flags = 0;
    if (dump.info.read_only) {
      vol.flags |= kVolFlagReadOnly;
    }
    if (dump.info.is_clone) {
      vol.flags |= kVolFlagClone;
    }
    vol.backing_volume = dump.info.backing_volume;
    vol.version_counter = std::max(vol.version_counter, dump.info.max_data_version);
    return WriteSlot(txn, slot_index, vol);
  }));
  return new_id;
}

Status Aggregate::ApplyDelta(uint64_t volume_id, const VolumeDump& delta) {
  MutexLock lock(op_mu_);
  ASSIGN_OR_RETURN(auto pair, FindVolumeSlot(volume_id));
  VolumeSlot vol = std::move(pair.first);
  uint32_t slot_index = pair.second;

  for (const VolumeDumpFile& f : delta.files) {
    RETURN_IF_ERROR(RunTxnLocked([&](const TxnToken& txn) -> Status {
      txn.AssertIssued();
      return RestoreOneFile(txn, slot_index, vol, f, /*overwrite=*/true);
    }));
  }
  // Prune vnodes deleted at the source.
  if (!delta.live_vnodes.empty()) {
    std::unordered_set<uint64_t> live(delta.live_vnodes.begin(), delta.live_vnodes.end());
    for (uint64_t v = 1; v < vol.anode_count; ++v) {
      ASSIGN_OR_RETURN(AnodeRecord rec, ReadAnode(vol, v));
      if (rec.type == AnodeType::kFree || rec.type == AnodeType::kAcl) {
        continue;
      }
      if (live.count(v) == 0) {
        RETURN_IF_ERROR(RunTxnLocked([&](const TxnToken& txn) -> Status {
          txn.AssertIssued();
          return FreeAnode(txn, slot_index, vol, v);
        }));
      }
    }
  }
  return RunTxnLocked([&](const TxnToken& txn) -> Status {
    txn.AssertIssued();
    vol.version_counter = std::max(vol.version_counter, delta.info.max_data_version);
    return WriteSlot(txn, slot_index, vol);
  });
}

}  // namespace dfs

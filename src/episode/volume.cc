#include "src/episode/volume.h"

#include <algorithm>
#include <atomic>
#include <cstring>

namespace dfs {
namespace {

// Per-operation volume context: the registry slot (re-read on every operation
// so the buffer cache remains the single source of truth) plus its index.
struct VolCtx {
  VolumeSlot vol;
  uint32_t slot_index = 0;
};

Result<VolCtx> LoadVolume(Aggregate& agg, uint64_t volume_id, bool for_write) {
  ASSIGN_OR_RETURN(auto pair, agg.FindVolumeSlot(volume_id));
  VolCtx ctx{std::move(pair.first), pair.second};
  if (ctx.vol.flags & kVolFlagBusy) {
    return Status(ErrorCode::kBusy, "volume busy (move/clone in progress)");
  }
  if (for_write && (ctx.vol.flags & kVolFlagReadOnly)) {
    return Status(ErrorCode::kPermissionDenied, "read-only volume");
  }
  return ctx;
}

FileType TypeFromAnode(AnodeType t) {
  switch (t) {
    case AnodeType::kDirectory:
      return FileType::kDirectory;
    case AnodeType::kSymlink:
      return FileType::kSymlink;
    default:
      return FileType::kFile;
  }
}

AnodeType AnodeFromType(FileType t) {
  switch (t) {
    case FileType::kDirectory:
      return AnodeType::kDirectory;
    case FileType::kSymlink:
      return AnodeType::kSymlink;
    default:
      return AnodeType::kFile;
  }
}

// Pseudo-time for mtime/ctime: the virtual clock when configured, otherwise a
// process-wide monotonic counter (tests only compare for ordering).
uint64_t NowTime(Aggregate& agg) {
  if (agg.options().wal.clock != nullptr) {
    return agg.options().wal.clock->Now();
  }
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1);
}

}  // namespace

// --- EpisodeVfs ---

Result<VnodeRef> EpisodeVfs::Root() {
  MutexLock lock(agg_->op_mu());
  ASSIGN_OR_RETURN(VolCtx ctx, LoadVolume(*agg_, volume_id_, /*for_write=*/false));
  ASSIGN_OR_RETURN(AnodeRecord rec, agg_->ReadAnode(ctx.vol, ctx.vol.root_vnode));
  if (rec.type != AnodeType::kDirectory) {
    return Status(ErrorCode::kCorrupt, "volume root is not a directory");
  }
  return VnodeRef(
      std::make_shared<EpisodeVnode>(agg_, volume_id_, ctx.vol.root_vnode, rec.uniq));
}

Result<VnodeRef> EpisodeVfs::VnodeByFid(const Fid& fid) {
  if (fid.volume != volume_id_) {
    return Status(ErrorCode::kStale, "FID volume mismatch");
  }
  MutexLock lock(agg_->op_mu());
  ASSIGN_OR_RETURN(VolCtx ctx, LoadVolume(*agg_, volume_id_, /*for_write=*/false));
  ASSIGN_OR_RETURN(AnodeRecord rec, agg_->ReadAnode(ctx.vol, fid.vnode));
  if (rec.type == AnodeType::kFree || rec.type == AnodeType::kAcl || rec.uniq != fid.uniq) {
    return Status(ErrorCode::kStale, "stale FID " + fid.ToString());
  }
  return VnodeRef(std::make_shared<EpisodeVnode>(agg_, volume_id_, fid.vnode, fid.uniq));
}

Status EpisodeVfs::Sync() { return agg_->SyncLog(); }

bool EpisodeVfs::ReadOnly() const {
  auto pair = agg_->FindVolumeSlot(volume_id_);
  return pair.ok() && (pair->first.flags & kVolFlagReadOnly) != 0;
}

// --- EpisodeVnode helpers ---

namespace {

// Loads the volume and this vnode's anode, verifying the uniquifier.
struct NodeCtx {
  VolCtx vc;
  AnodeRecord rec;
};

Result<NodeCtx> LoadNode(Aggregate& agg, uint64_t volume_id, uint64_t vnode, uint64_t uniq,
                         bool for_write) {
  ASSIGN_OR_RETURN(VolCtx vc, LoadVolume(agg, volume_id, for_write));
  ASSIGN_OR_RETURN(AnodeRecord rec, agg.ReadAnode(vc.vol, vnode));
  if (rec.type == AnodeType::kFree || rec.uniq != uniq) {
    return Status(ErrorCode::kStale, "stale FID");
  }
  return NodeCtx{std::move(vc), rec};
}

}  // namespace

Result<FileAttr> EpisodeVnode::GetAttr() {
  MutexLock lock(agg_->op_mu());
  ASSIGN_OR_RETURN(NodeCtx ctx, LoadNode(*agg_, volume_id_, vnode_, uniq_, false));
  const AnodeRecord& rec = ctx.rec;
  FileAttr attr;
  attr.fid = fid();
  attr.type = TypeFromAnode(rec.type);
  attr.size = rec.size;
  attr.mode = rec.mode;
  attr.uid = rec.uid;
  attr.gid = rec.gid;
  attr.nlink = rec.nlink;
  attr.mtime = rec.mtime;
  attr.ctime = rec.ctime;
  attr.atime = rec.atime;
  attr.data_version = rec.data_version;
  return attr;
}

Status EpisodeVnode::SetAttr(const AttrUpdate& update) {
  MutexLock lock(agg_->op_mu());
  ASSIGN_OR_RETURN(NodeCtx ctx, LoadNode(*agg_, volume_id_, vnode_, uniq_, true));
  return agg_->RunTxnLocked([&](const TxnToken& txn) -> Status {
    txn.AssertIssued();
    AnodeRecord rec = ctx.rec;
    if (update.mode) {
      rec.mode = *update.mode;
    }
    if (update.uid) {
      rec.uid = *update.uid;
    }
    if (update.gid) {
      rec.gid = *update.gid;
    }
    if (update.mtime) {
      rec.mtime = *update.mtime;
    }
    if (update.atime) {
      rec.atime = *update.atime;
    }
    rec.ctime = NowTime(*agg_);
    ASSIGN_OR_RETURN(rec.data_version, agg_->BumpVersion(txn, ctx.vc.slot_index, ctx.vc.vol));
    return agg_->WriteAnode(txn, ctx.vc.slot_index, ctx.vc.vol, vnode_, rec);
  });
}

Result<size_t> EpisodeVnode::Read(uint64_t offset, std::span<uint8_t> out) {
  MutexLock lock(agg_->op_mu());
  ASSIGN_OR_RETURN(NodeCtx ctx, LoadNode(*agg_, volume_id_, vnode_, uniq_, false));
  if (ctx.rec.type == AnodeType::kDirectory) {
    return Status(ErrorCode::kIsDirectory, "read of a directory");
  }
  if (offset >= ctx.rec.size) {
    return size_t{0};
  }
  size_t n = static_cast<size_t>(std::min<uint64_t>(out.size(), ctx.rec.size - offset));
  RETURN_IF_ERROR(agg_->ReadContainer(ctx.rec, offset, out.subspan(0, n)));
  return n;
}

Result<size_t> EpisodeVnode::Write(uint64_t offset, std::span<const uint8_t> data) {
  MutexLock lock(agg_->op_mu());
  ASSIGN_OR_RETURN(NodeCtx ctx, LoadNode(*agg_, volume_id_, vnode_, uniq_, true));
  if (ctx.rec.type != AnodeType::kFile) {
    return Status(ErrorCode::kIsDirectory, "write of a non-regular file");
  }
  // Long writes are split into chains of short transactions (Section 2.2),
  // each leaving the file system consistent.
  constexpr size_t kChunkBytes = 32 * kBlockSize;
  size_t done = 0;
  while (done < data.size() || data.empty()) {
    size_t chunk = std::min(kChunkBytes, data.size() - done);
    Status s = agg_->RunTxnLocked([&](const TxnToken& txn) -> Status {
      txn.AssertIssued();
      RETURN_IF_ERROR(agg_->PrivatizeAnode(txn, ctx.vc.slot_index, ctx.vc.vol, vnode_));
      ASSIGN_OR_RETURN(AnodeRecord rec, agg_->ReadAnode(ctx.vc.vol, vnode_));
      bool changed = false;
      RETURN_IF_ERROR(agg_->WriteContainer(txn, rec, Aggregate::Kind::kData, offset + done,
                                           data.subspan(done, chunk), &changed));
      rec.mtime = NowTime(*agg_);
      ASSIGN_OR_RETURN(rec.data_version, agg_->BumpVersion(txn, ctx.vc.slot_index, ctx.vc.vol));
      return agg_->WriteAnode(txn, ctx.vc.slot_index, ctx.vc.vol, vnode_, rec);
    });
    RETURN_IF_ERROR(s);
    done += chunk;
    if (data.empty()) {
      break;
    }
  }
  return data.size();
}

Status EpisodeVnode::Truncate(uint64_t new_size) {
  MutexLock lock(agg_->op_mu());
  ASSIGN_OR_RETURN(NodeCtx ctx, LoadNode(*agg_, volume_id_, vnode_, uniq_, true));
  if (ctx.rec.type != AnodeType::kFile) {
    return Status(ErrorCode::kIsDirectory, "truncate of a non-regular file");
  }
  // Truncation of a large file is broken up, a few blocks at a time, so each
  // transaction stays short-lived (Section 2.2's worked example).
  constexpr uint64_t kChunkBlocks = 64;
  uint64_t target = new_size;
  for (;;) {
    ASSIGN_OR_RETURN(AnodeRecord cur, agg_->ReadAnode(ctx.vc.vol, vnode_));
    uint64_t cur_blocks = cur.BlockCount();
    uint64_t target_blocks = (target + kBlockSize - 1) / kBlockSize;
    uint64_t step_size;
    if (cur_blocks > target_blocks + kChunkBlocks) {
      step_size = (cur_blocks - kChunkBlocks) * kBlockSize;
    } else {
      step_size = target;
    }
    Status s = agg_->RunTxnLocked([&](const TxnToken& txn) -> Status {
      txn.AssertIssued();
      RETURN_IF_ERROR(agg_->PrivatizeAnode(txn, ctx.vc.slot_index, ctx.vc.vol, vnode_));
      ASSIGN_OR_RETURN(AnodeRecord rec, agg_->ReadAnode(ctx.vc.vol, vnode_));
      bool changed = false;
      RETURN_IF_ERROR(
          agg_->TruncateContainer(txn, rec, Aggregate::Kind::kData, step_size, &changed));
      rec.mtime = NowTime(*agg_);
      ASSIGN_OR_RETURN(rec.data_version, agg_->BumpVersion(txn, ctx.vc.slot_index, ctx.vc.vol));
      return agg_->WriteAnode(txn, ctx.vc.slot_index, ctx.vc.vol, vnode_, rec);
    });
    RETURN_IF_ERROR(s);
    if (step_size == target) {
      return Status::Ok();
    }
  }
}

Result<VnodeRef> EpisodeVnode::Lookup(std::string_view name) {
  MutexLock lock(agg_->op_mu());
  ASSIGN_OR_RETURN(NodeCtx ctx, LoadNode(*agg_, volume_id_, vnode_, uniq_, false));
  if (ctx.rec.type != AnodeType::kDirectory) {
    return Status(ErrorCode::kNotDirectory, "lookup in a non-directory");
  }
  ASSIGN_OR_RETURN(DirSlot entry, agg_->DirFind(ctx.rec, name));
  return VnodeRef(std::make_shared<EpisodeVnode>(agg_, volume_id_, entry.vnode, entry.uniq));
}

Result<VnodeRef> EpisodeVnode::Create(std::string_view name, FileType type, uint32_t mode,
                                      const Cred& cred) {
  MutexLock lock(agg_->op_mu());
  ASSIGN_OR_RETURN(NodeCtx ctx, LoadNode(*agg_, volume_id_, vnode_, uniq_, true));
  if (ctx.rec.type != AnodeType::kDirectory) {
    return Status(ErrorCode::kNotDirectory, "create in a non-directory");
  }
  if (type == FileType::kSymlink) {
    return Status(ErrorCode::kInvalidArgument, "use CreateSymlink");
  }
  uint64_t child_vnode = 0;
  uint64_t child_uniq = 0;
  Status s = agg_->RunTxnLocked([&](const TxnToken& txn) -> Status {
    txn.AssertIssued();
    if (agg_->DirFind(ctx.rec, name).ok()) {
      return Status(ErrorCode::kExists, "entry exists: " + std::string(name));
    }
    // The parent's content blocks may be shared with a clone; privatize before
    // editing entries so the snapshot keeps its view.
    RETURN_IF_ERROR(agg_->PrivatizeAnode(txn, ctx.vc.slot_index, ctx.vc.vol, vnode_));
    AnodeRecord init;
    init.mode = mode;
    init.uid = cred.uid;
    init.gid = cred.gids.empty() ? 0 : cred.gids[0];
    init.nlink = (type == FileType::kDirectory) ? 2 : 1;
    init.mtime = init.ctime = init.atime = NowTime(*agg_);
    ASSIGN_OR_RETURN(init.data_version, agg_->BumpVersion(txn, ctx.vc.slot_index, ctx.vc.vol));
    ASSIGN_OR_RETURN(child_vnode,
                     agg_->AllocAnode(txn, ctx.vc.slot_index, ctx.vc.vol, AnodeFromType(type),
                                      init));
    ASSIGN_OR_RETURN(AnodeRecord child, agg_->ReadAnode(ctx.vc.vol, child_vnode));
    child_uniq = child.uniq;
    if (type == FileType::kDirectory) {
      bool ch = false;
      RETURN_IF_ERROR(agg_->DirAddEntry(
          txn, child,
          DirSlot{child_vnode, child_uniq, 1, static_cast<uint8_t>(FileType::kDirectory), "."},
          &ch));
      RETURN_IF_ERROR(agg_->DirAddEntry(
          txn, child,
          DirSlot{vnode_, uniq_, 1, static_cast<uint8_t>(FileType::kDirectory), ".."}, &ch));
      RETURN_IF_ERROR(agg_->WriteAnode(txn, ctx.vc.slot_index, ctx.vc.vol, child_vnode, child));
    }
    // Re-read the parent: allocating the child may have COWed the table block
    // holding it.
    ASSIGN_OR_RETURN(AnodeRecord parent, agg_->ReadAnode(ctx.vc.vol, vnode_));
    bool ch = false;
    RETURN_IF_ERROR(agg_->DirAddEntry(
        txn, parent,
        DirSlot{child_vnode, child_uniq, 1, static_cast<uint8_t>(type), std::string(name)},
        &ch));
    if (type == FileType::kDirectory) {
      parent.nlink += 1;  // the child's ".." entry
    }
    parent.mtime = NowTime(*agg_);
    ASSIGN_OR_RETURN(parent.data_version, agg_->BumpVersion(txn, ctx.vc.slot_index, ctx.vc.vol));
    return agg_->WriteAnode(txn, ctx.vc.slot_index, ctx.vc.vol, vnode_, parent);
  });
  RETURN_IF_ERROR(s);
  return VnodeRef(std::make_shared<EpisodeVnode>(agg_, volume_id_, child_vnode, child_uniq));
}

Result<VnodeRef> EpisodeVnode::CreateSymlink(std::string_view name, std::string_view target,
                                             const Cred& cred) {
  MutexLock lock(agg_->op_mu());
  ASSIGN_OR_RETURN(NodeCtx ctx, LoadNode(*agg_, volume_id_, vnode_, uniq_, true));
  if (ctx.rec.type != AnodeType::kDirectory) {
    return Status(ErrorCode::kNotDirectory, "create in a non-directory");
  }
  uint64_t child_vnode = 0;
  uint64_t child_uniq = 0;
  Status s = agg_->RunTxnLocked([&](const TxnToken& txn) -> Status {
    txn.AssertIssued();
    if (agg_->DirFind(ctx.rec, name).ok()) {
      return Status(ErrorCode::kExists, "entry exists: " + std::string(name));
    }
    RETURN_IF_ERROR(agg_->PrivatizeAnode(txn, ctx.vc.slot_index, ctx.vc.vol, vnode_));
    AnodeRecord init;
    init.mode = 0777;
    init.uid = cred.uid;
    init.gid = cred.gids.empty() ? 0 : cred.gids[0];
    init.nlink = 1;
    init.mtime = init.ctime = init.atime = NowTime(*agg_);
    ASSIGN_OR_RETURN(init.data_version, agg_->BumpVersion(txn, ctx.vc.slot_index, ctx.vc.vol));
    ASSIGN_OR_RETURN(child_vnode, agg_->AllocAnode(txn, ctx.vc.slot_index, ctx.vc.vol,
                                                   AnodeType::kSymlink, init));
    ASSIGN_OR_RETURN(AnodeRecord child, agg_->ReadAnode(ctx.vc.vol, child_vnode));
    child_uniq = child.uniq;
    bool ch = false;
    std::span<const uint8_t> bytes(reinterpret_cast<const uint8_t*>(target.data()),
                                   target.size());
    RETURN_IF_ERROR(
        agg_->WriteContainer(txn, child, Aggregate::Kind::kMeta, 0, bytes, &ch));
    RETURN_IF_ERROR(agg_->WriteAnode(txn, ctx.vc.slot_index, ctx.vc.vol, child_vnode, child));
    ASSIGN_OR_RETURN(AnodeRecord parent, agg_->ReadAnode(ctx.vc.vol, vnode_));
    ch = false;
    RETURN_IF_ERROR(agg_->DirAddEntry(
        txn, parent,
        DirSlot{child_vnode, child_uniq, 1, static_cast<uint8_t>(FileType::kSymlink),
                std::string(name)},
        &ch));
    parent.mtime = NowTime(*agg_);
    ASSIGN_OR_RETURN(parent.data_version, agg_->BumpVersion(txn, ctx.vc.slot_index, ctx.vc.vol));
    return agg_->WriteAnode(txn, ctx.vc.slot_index, ctx.vc.vol, vnode_, parent);
  });
  RETURN_IF_ERROR(s);
  return VnodeRef(std::make_shared<EpisodeVnode>(agg_, volume_id_, child_vnode, child_uniq));
}

Status EpisodeVnode::Link(std::string_view name, Vnode& target) {
  auto* other = dynamic_cast<EpisodeVnode*>(&target);
  if (other == nullptr || other->volume_id_ != volume_id_) {
    return Status(ErrorCode::kCrossVolume, "hard link across volumes");
  }
  MutexLock lock(agg_->op_mu());
  ASSIGN_OR_RETURN(NodeCtx ctx, LoadNode(*agg_, volume_id_, vnode_, uniq_, true));
  if (ctx.rec.type != AnodeType::kDirectory) {
    return Status(ErrorCode::kNotDirectory, "link target dir is not a directory");
  }
  return agg_->RunTxnLocked([&](const TxnToken& txn) -> Status {
    txn.AssertIssued();
    ASSIGN_OR_RETURN(AnodeRecord trec, agg_->ReadAnode(ctx.vc.vol, other->vnode_));
    if (trec.type != AnodeType::kFile || trec.uniq != other->uniq_) {
      return Status(ErrorCode::kInvalidArgument, "hard link target must be a regular file");
    }
    RETURN_IF_ERROR(agg_->PrivatizeAnode(txn, ctx.vc.slot_index, ctx.vc.vol, vnode_));
    ASSIGN_OR_RETURN(AnodeRecord parent, agg_->ReadAnode(ctx.vc.vol, vnode_));
    bool ch = false;
    RETURN_IF_ERROR(agg_->DirAddEntry(
        txn, parent,
        DirSlot{other->vnode_, other->uniq_, 1, static_cast<uint8_t>(FileType::kFile),
                std::string(name)},
        &ch));
    parent.mtime = NowTime(*agg_);
    ASSIGN_OR_RETURN(parent.data_version, agg_->BumpVersion(txn, ctx.vc.slot_index, ctx.vc.vol));
    RETURN_IF_ERROR(agg_->WriteAnode(txn, ctx.vc.slot_index, ctx.vc.vol, vnode_, parent));
    ASSIGN_OR_RETURN(trec, agg_->ReadAnode(ctx.vc.vol, other->vnode_));
    trec.nlink += 1;
    trec.ctime = NowTime(*agg_);
    ASSIGN_OR_RETURN(trec.data_version, agg_->BumpVersion(txn, ctx.vc.slot_index, ctx.vc.vol));
    return agg_->WriteAnode(txn, ctx.vc.slot_index, ctx.vc.vol, other->vnode_, trec);
  });
}

Status EpisodeVnode::Unlink(std::string_view name) {
  MutexLock lock(agg_->op_mu());
  ASSIGN_OR_RETURN(NodeCtx ctx, LoadNode(*agg_, volume_id_, vnode_, uniq_, true));
  if (ctx.rec.type != AnodeType::kDirectory) {
    return Status(ErrorCode::kNotDirectory, "unlink in a non-directory");
  }
  if (name == "." || name == "..") {
    return Status(ErrorCode::kInvalidArgument, "cannot unlink . or ..");
  }
  return agg_->RunTxnLocked([&](const TxnToken& txn) -> Status {
    txn.AssertIssued();
    ASSIGN_OR_RETURN(DirSlot entry, agg_->DirFind(ctx.rec, name));
    ASSIGN_OR_RETURN(AnodeRecord child, agg_->ReadAnode(ctx.vc.vol, entry.vnode));
    if (child.type == AnodeType::kDirectory) {
      return Status(ErrorCode::kIsDirectory, "use Rmdir for directories");
    }
    RETURN_IF_ERROR(agg_->PrivatizeAnode(txn, ctx.vc.slot_index, ctx.vc.vol, vnode_));
    ASSIGN_OR_RETURN(AnodeRecord parent, agg_->ReadAnode(ctx.vc.vol, vnode_));
    bool ch = false;
    RETURN_IF_ERROR(agg_->DirRemoveEntry(txn, parent, name, &ch));
    parent.mtime = NowTime(*agg_);
    ASSIGN_OR_RETURN(parent.data_version, agg_->BumpVersion(txn, ctx.vc.slot_index, ctx.vc.vol));
    RETURN_IF_ERROR(agg_->WriteAnode(txn, ctx.vc.slot_index, ctx.vc.vol, vnode_, parent));
    ASSIGN_OR_RETURN(child, agg_->ReadAnode(ctx.vc.vol, entry.vnode));
    if (child.nlink <= 1) {
      return agg_->FreeAnode(txn, ctx.vc.slot_index, ctx.vc.vol, entry.vnode);
    }
    child.nlink -= 1;
    child.ctime = NowTime(*agg_);
    ASSIGN_OR_RETURN(child.data_version, agg_->BumpVersion(txn, ctx.vc.slot_index, ctx.vc.vol));
    return agg_->WriteAnode(txn, ctx.vc.slot_index, ctx.vc.vol, entry.vnode, child);
  });
}

Status EpisodeVnode::Rmdir(std::string_view name) {
  MutexLock lock(agg_->op_mu());
  ASSIGN_OR_RETURN(NodeCtx ctx, LoadNode(*agg_, volume_id_, vnode_, uniq_, true));
  if (ctx.rec.type != AnodeType::kDirectory) {
    return Status(ErrorCode::kNotDirectory, "rmdir in a non-directory");
  }
  if (name == "." || name == "..") {
    return Status(ErrorCode::kInvalidArgument, "cannot rmdir . or ..");
  }
  return agg_->RunTxnLocked([&](const TxnToken& txn) -> Status {
    txn.AssertIssued();
    ASSIGN_OR_RETURN(DirSlot entry, agg_->DirFind(ctx.rec, name));
    ASSIGN_OR_RETURN(AnodeRecord child, agg_->ReadAnode(ctx.vc.vol, entry.vnode));
    if (child.type != AnodeType::kDirectory) {
      return Status(ErrorCode::kNotDirectory, "rmdir of a non-directory");
    }
    ASSIGN_OR_RETURN(bool empty, agg_->DirIsEmpty(child));
    if (!empty) {
      return Status(ErrorCode::kNotEmpty, "directory not empty");
    }
    RETURN_IF_ERROR(agg_->PrivatizeAnode(txn, ctx.vc.slot_index, ctx.vc.vol, vnode_));
    ASSIGN_OR_RETURN(AnodeRecord parent, agg_->ReadAnode(ctx.vc.vol, vnode_));
    bool ch = false;
    RETURN_IF_ERROR(agg_->DirRemoveEntry(txn, parent, name, &ch));
    parent.nlink -= 1;  // child's ".." no longer references us
    parent.mtime = NowTime(*agg_);
    ASSIGN_OR_RETURN(parent.data_version, agg_->BumpVersion(txn, ctx.vc.slot_index, ctx.vc.vol));
    RETURN_IF_ERROR(agg_->WriteAnode(txn, ctx.vc.slot_index, ctx.vc.vol, vnode_, parent));
    return agg_->FreeAnode(txn, ctx.vc.slot_index, ctx.vc.vol, entry.vnode);
  });
}

Result<std::vector<DirEntry>> EpisodeVnode::ReadDir() {
  MutexLock lock(agg_->op_mu());
  ASSIGN_OR_RETURN(NodeCtx ctx, LoadNode(*agg_, volume_id_, vnode_, uniq_, false));
  if (ctx.rec.type != AnodeType::kDirectory) {
    return Status(ErrorCode::kNotDirectory, "readdir of a non-directory");
  }
  ASSIGN_OR_RETURN(std::vector<DirSlot> slots, agg_->DirList(ctx.rec));
  std::vector<DirEntry> out;
  out.reserve(slots.size());
  for (const DirSlot& s : slots) {
    out.push_back(DirEntry{s.name, s.vnode, s.uniq, static_cast<FileType>(s.type)});
  }
  return out;
}

Result<std::string> EpisodeVnode::ReadSymlink() {
  MutexLock lock(agg_->op_mu());
  ASSIGN_OR_RETURN(NodeCtx ctx, LoadNode(*agg_, volume_id_, vnode_, uniq_, false));
  if (ctx.rec.type != AnodeType::kSymlink) {
    return Status(ErrorCode::kInvalidArgument, "not a symlink");
  }
  std::string out(ctx.rec.size, '\0');
  RETURN_IF_ERROR(agg_->ReadContainer(
      ctx.rec, 0, std::span<uint8_t>(reinterpret_cast<uint8_t*>(out.data()), out.size())));
  return out;
}

Result<Acl> EpisodeVnode::GetAcl() {
  MutexLock lock(agg_->op_mu());
  ASSIGN_OR_RETURN(NodeCtx ctx, LoadNode(*agg_, volume_id_, vnode_, uniq_, false));
  if (ctx.rec.acl_vnode == 0) {
    return Acl();
  }
  ASSIGN_OR_RETURN(AnodeRecord acl_an, agg_->ReadAnode(ctx.vc.vol, ctx.rec.acl_vnode));
  std::vector<uint8_t> bytes(acl_an.size);
  RETURN_IF_ERROR(agg_->ReadContainer(acl_an, 0, bytes));
  Reader r(bytes);
  return Acl::Deserialize(r);
}

Status EpisodeVnode::SetAcl(const Acl& acl) {
  MutexLock lock(agg_->op_mu());
  ASSIGN_OR_RETURN(NodeCtx ctx, LoadNode(*agg_, volume_id_, vnode_, uniq_, true));
  return agg_->RunTxnLocked([&](const TxnToken& txn) -> Status {
    txn.AssertIssued();
    Writer w;
    acl.Serialize(w);
    uint64_t acl_vnode = ctx.rec.acl_vnode;
    if (acl_vnode == 0) {
      AnodeRecord init;
      init.nlink = 1;
      ASSIGN_OR_RETURN(init.data_version, agg_->BumpVersion(txn, ctx.vc.slot_index, ctx.vc.vol));
      ASSIGN_OR_RETURN(acl_vnode, agg_->AllocAnode(txn, ctx.vc.slot_index, ctx.vc.vol,
                                                   AnodeType::kAcl, init));
    }
    RETURN_IF_ERROR(agg_->PrivatizeAnode(txn, ctx.vc.slot_index, ctx.vc.vol, acl_vnode));
    ASSIGN_OR_RETURN(AnodeRecord acl_an, agg_->ReadAnode(ctx.vc.vol, acl_vnode));
    bool ch = false;
    RETURN_IF_ERROR(
        agg_->TruncateContainer(txn, acl_an, Aggregate::Kind::kMeta, 0, &ch));
    RETURN_IF_ERROR(
        agg_->WriteContainer(txn, acl_an, Aggregate::Kind::kMeta, 0, w.data(), &ch));
    RETURN_IF_ERROR(agg_->WriteAnode(txn, ctx.vc.slot_index, ctx.vc.vol, acl_vnode, acl_an));
    ASSIGN_OR_RETURN(AnodeRecord rec, agg_->ReadAnode(ctx.vc.vol, vnode_));
    rec.acl_vnode = acl_vnode;
    rec.ctime = NowTime(*agg_);
    ASSIGN_OR_RETURN(rec.data_version, agg_->BumpVersion(txn, ctx.vc.slot_index, ctx.vc.vol));
    return agg_->WriteAnode(txn, ctx.vc.slot_index, ctx.vc.vol, vnode_, rec);
  });
}

Status EpisodeVfs::Rename(Vnode& src_dir, std::string_view src_name, Vnode& dst_dir,
                          std::string_view dst_name) {
  auto* src = dynamic_cast<EpisodeVnode*>(&src_dir);
  auto* dst = dynamic_cast<EpisodeVnode*>(&dst_dir);
  if (src == nullptr || dst == nullptr || src->volume_id_ != volume_id_ ||
      dst->volume_id_ != volume_id_) {
    return Status(ErrorCode::kCrossVolume, "rename across volumes");
  }
  if (src_name == "." || src_name == ".." || dst_name == "." || dst_name == "..") {
    return Status(ErrorCode::kInvalidArgument, "cannot rename . or ..");
  }
  MutexLock lock(agg_->op_mu());
  ASSIGN_OR_RETURN(VolCtx vc, LoadVolume(*agg_, volume_id_, /*for_write=*/true));
  return agg_->RunTxnLocked([&](const TxnToken& txn) -> Status {
    txn.AssertIssued();
    RETURN_IF_ERROR(agg_->PrivatizeAnode(txn, vc.slot_index, vc.vol, src->vnode_));
    RETURN_IF_ERROR(agg_->PrivatizeAnode(txn, vc.slot_index, vc.vol, dst->vnode_));
    ASSIGN_OR_RETURN(AnodeRecord sdir, agg_->ReadAnode(vc.vol, src->vnode_));
    ASSIGN_OR_RETURN(DirSlot moving, agg_->DirFind(sdir, src_name));
    ASSIGN_OR_RETURN(AnodeRecord child, agg_->ReadAnode(vc.vol, moving.vnode));
    bool is_dir = child.type == AnodeType::kDirectory;
    bool same_dir = src->vnode_ == dst->vnode_;

    // If the destination exists, remove it (file: unlink; dir: must be empty).
    ASSIGN_OR_RETURN(AnodeRecord ddir, agg_->ReadAnode(vc.vol, dst->vnode_));
    auto existing = agg_->DirFind(ddir, dst_name);
    if (existing.ok()) {
      if (existing->vnode == moving.vnode) {
        return Status::Ok();  // renaming onto the same file
      }
      ASSIGN_OR_RETURN(AnodeRecord victim, agg_->ReadAnode(vc.vol, existing->vnode));
      if (victim.type == AnodeType::kDirectory) {
        if (!is_dir) {
          return Status(ErrorCode::kIsDirectory, "target is a directory");
        }
        ASSIGN_OR_RETURN(bool empty, agg_->DirIsEmpty(victim));
        if (!empty) {
          return Status(ErrorCode::kNotEmpty, "target directory not empty");
        }
      } else if (is_dir) {
        return Status(ErrorCode::kNotDirectory, "target is not a directory");
      }
      bool ch = false;
      RETURN_IF_ERROR(agg_->DirRemoveEntry(txn, ddir, dst_name, &ch));
      RETURN_IF_ERROR(agg_->WriteAnode(txn, vc.slot_index, vc.vol, dst->vnode_, ddir));
      ASSIGN_OR_RETURN(victim, agg_->ReadAnode(vc.vol, existing->vnode));
      if (victim.type == AnodeType::kDirectory || victim.nlink <= 1) {
        RETURN_IF_ERROR(agg_->FreeAnode(txn, vc.slot_index, vc.vol, existing->vnode));
        if (victim.type == AnodeType::kDirectory) {
          ASSIGN_OR_RETURN(ddir, agg_->ReadAnode(vc.vol, dst->vnode_));
          ddir.nlink -= 1;
          RETURN_IF_ERROR(agg_->WriteAnode(txn, vc.slot_index, vc.vol, dst->vnode_, ddir));
        }
      } else {
        victim.nlink -= 1;
        ASSIGN_OR_RETURN(victim.data_version, agg_->BumpVersion(txn, vc.slot_index, vc.vol));
        RETURN_IF_ERROR(agg_->WriteAnode(txn, vc.slot_index, vc.vol, existing->vnode, victim));
      }
    }

    // Add the entry under its new name, then remove the old one.
    ASSIGN_OR_RETURN(ddir, agg_->ReadAnode(vc.vol, dst->vnode_));
    bool ch = false;
    RETURN_IF_ERROR(agg_->DirAddEntry(
        txn, ddir, DirSlot{moving.vnode, moving.uniq, 1, moving.type, std::string(dst_name)},
        &ch));
    ddir.mtime = NowTime(*agg_);
    ASSIGN_OR_RETURN(ddir.data_version, agg_->BumpVersion(txn, vc.slot_index, vc.vol));
    RETURN_IF_ERROR(agg_->WriteAnode(txn, vc.slot_index, vc.vol, dst->vnode_, ddir));

    ASSIGN_OR_RETURN(sdir, agg_->ReadAnode(vc.vol, src->vnode_));
    ch = false;
    RETURN_IF_ERROR(agg_->DirRemoveEntry(txn, sdir, src_name, &ch));
    sdir.mtime = NowTime(*agg_);
    ASSIGN_OR_RETURN(sdir.data_version, agg_->BumpVersion(txn, vc.slot_index, vc.vol));
    RETURN_IF_ERROR(agg_->WriteAnode(txn, vc.slot_index, vc.vol, src->vnode_, sdir));

    // Moving a directory between parents: fix its ".." and the link counts.
    if (is_dir && !same_dir) {
      RETURN_IF_ERROR(agg_->PrivatizeAnode(txn, vc.slot_index, vc.vol, moving.vnode));
      ASSIGN_OR_RETURN(child, agg_->ReadAnode(vc.vol, moving.vnode));
      bool cch = false;
      RETURN_IF_ERROR(agg_->DirUpdateEntry(txn, child, "..", dst->vnode_, dst->uniq_,
                                           static_cast<uint8_t>(FileType::kDirectory), &cch));
      RETURN_IF_ERROR(agg_->WriteAnode(txn, vc.slot_index, vc.vol, moving.vnode, child));
      ASSIGN_OR_RETURN(sdir, agg_->ReadAnode(vc.vol, src->vnode_));
      sdir.nlink -= 1;
      RETURN_IF_ERROR(agg_->WriteAnode(txn, vc.slot_index, vc.vol, src->vnode_, sdir));
      ASSIGN_OR_RETURN(ddir, agg_->ReadAnode(vc.vol, dst->vnode_));
      ddir.nlink += 1;
      RETURN_IF_ERROR(agg_->WriteAnode(txn, vc.slot_index, vc.vol, dst->vnode_, ddir));
    }
    return Status::Ok();
  });
}

}  // namespace dfs

// Write-ahead log with old/new-value records, short transactions, and group
// commit (Section 2.2).
//
// Design points taken from the paper:
//  - Each aggregate has a log: a fixed-size area of disk set at initialization.
//  - Changes to meta-data are logged; user data is not. A log record carries
//    the old and new values of every changed byte plus the owning transaction.
//  - A separate record notes when a transaction commits. Recovery replays the
//    log: committed transactions are redone, uncommitted ones undone. Recovery
//    time is proportional to the active log, not to the file system.
//  - Transactions never span VFS calls; long operations are split into chains
//    of short transactions, which keeps the log small and fixed-size without
//    complex truncation logic (when the area nears full we checkpoint: flush
//    all dirty buffers and reset the log).
//  - Group commit: commit records accumulate in memory and are forced to disk
//    in one sequential append on sync/fsync, when the batch is large, or when
//    the 30-second-equivalent interval elapses on the virtual clock.
//
// Serialization note: the paper leaves transaction serialization out of scope;
// this implementation relies on the caller (Episode) running at most one
// update transaction per aggregate at a time, which makes the schedule
// trivially serializable. The API still tracks transactions individually so
// interleaved read-only work and the recovery logic stay honest.
#ifndef SRC_WAL_WAL_H_
#define SRC_WAL_WAL_H_

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "src/blockdev/block_device.h"
#include "src/buf/buffer_cache.h"
#include "src/common/capability.h"
#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/vclock.h"

namespace dfs {

using TxnId = uint64_t;

class Wal;

// Proof that a WAL transaction is open. Only Wal::Begin can mint one (the
// constructor is private to Wal and the type is non-copyable), so every
// log-mutating entry point taking `const TxnToken&` is statically unreachable
// from outside a Begin/Commit|Abort window — "WAL write outside a
// transaction" is a compile error, not a runtime kInvalidArgument.
using TxnToken = CapabilityToken<Wal, struct WalTxnTag, TxnId>;

class Wal : public WalFlusher {
 public:
  struct Options {
    uint64_t log_start_block = 0;  // first block of the log area
    uint64_t log_blocks = 0;       // size of the log area (incl. 1 header block)
    // Group-commit policy. force_on_commit overrides batching (ablation E10).
    bool force_on_commit = false;
    uint64_t group_commit_bytes = 256 * 1024;
    uint64_t group_commit_interval_ns = 30ull * 1'000'000'000ull;  // the paper's 30 s
    VirtualClock* clock = nullptr;  // may be null (interval check disabled)
  };

  struct Stats {
    uint64_t records = 0;
    uint64_t commits = 0;
    uint64_t aborts = 0;
    uint64_t log_flushes = 0;
    uint64_t log_bytes_flushed = 0;
    uint64_t checkpoints = 0;
  };

  struct RecoveryStats {
    uint64_t records_scanned = 0;
    uint64_t bytes_scanned = 0;
    uint64_t txns_redone = 0;
    uint64_t txns_undone = 0;
    uint64_t blocks_patched = 0;
  };

  Wal(BlockDevice& dev, BufferCache& cache, Options options);

  // Initializes an empty log (mkfs path).
  Status Format();

  // Replays the log after a crash: redo committed, undo uncommitted/aborted,
  // then resets the log area. The buffer cache is invalidated (the medium was
  // rewritten underneath it).
  Result<RecoveryStats> Recover();

  // Opens a transaction. The returned token is the open-transaction
  // capability: it cannot be copied or forged, so holding a `const TxnToken&`
  // *is* the proof the transaction is open. (C++17 guaranteed copy elision
  // lets the non-movable token be returned by value.)
  TxnToken Begin();

  // Applies `new_bytes` to the pinned metadata buffer at `offset`, logging the
  // old and new values under `txn`. The buffer is marked dirty with the
  // record's LSN so the cache enforces the write-ahead rule.
  Status LogUpdate(const TxnToken& txn, BufferCache::Ref& buf, uint32_t offset,
                   std::span<const uint8_t> new_bytes) REQUIRES(txn);

  Status Commit(const TxnToken& txn) REQUIRES(txn);

  // Restores old values in memory and logs an abort record; recovery treats
  // the transaction as undone (idempotent with the in-memory restore).
  Status Abort(const TxnToken& txn) REQUIRES(txn);

  // Forces the in-memory log tail to disk (sync/fsync path).
  Status Sync();

  // Flushes if the group-commit interval elapsed; called from the op path.
  Status MaybeGroupCommit();

  // WalFlusher: make the log durable through `lsn` (cache write-back hook).
  Status FlushTo(uint64_t lsn) override;

  // Flushes the log, then all dirty buffers, then resets the log area. Called
  // automatically when the area nears full.
  Status Checkpoint();

  Stats stats() const;
  uint64_t next_lsn() const;
  // Bytes of active (non-checkpointed) log; what recovery would scan.
  uint64_t active_bytes() const;

 private:
  enum class RecordKind : uint8_t { kUpdate = 1, kCommit = 2, kAbort = 3 };

  struct UndoEntry {
    uint64_t blockno;
    uint32_t offset;
    std::vector<uint8_t> old_bytes;
  };

  struct LogHeader {
    uint64_t magic;
    uint64_t epoch;
    uint64_t epoch_start_lsn;
  };

  static constexpr uint64_t kHeaderMagic = 0xDEC0'0EB1'50DE'0001ull;
  static constexpr uint32_t kRecordMagic = 0xDECA0B1Eu;

  Status AppendRecordLocked(RecordKind kind, TxnId txn, uint64_t blockno, uint32_t offset,
                            std::span<const uint8_t> old_bytes,
                            std::span<const uint8_t> new_bytes) REQUIRES(mu_);
  Status FlushLocked() REQUIRES(mu_);
  Status WriteHeader(const LogHeader& header);
  Result<LogHeader> ReadHeader();
  Status CheckpointIfNearFull();
  uint64_t LogDataBytes() const { return (options_.log_blocks - 1) * kBlockSize; }

  BlockDevice& dev_;
  BufferCache& cache_;
  const Options options_;

  mutable Mutex mu_;
  TxnId next_txn_ GUARDED_BY(mu_) = 1;
  uint64_t epoch_ GUARDED_BY(mu_) = 1;
  uint64_t epoch_start_lsn_ GUARDED_BY(mu_) = 0;
  uint64_t next_lsn_ GUARDED_BY(mu_) = 0;     // global byte counter across epochs
  uint64_t durable_lsn_ GUARDED_BY(mu_) = 0;  // log durable through this LSN
  uint64_t last_flush_time_ GUARDED_BY(mu_) = 0;
  // Serialized records in [durable_lsn_, next_lsn_).
  std::vector<uint8_t> pending_ GUARDED_BY(mu_);
  std::map<TxnId, std::vector<UndoEntry>> active_txns_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace dfs

#endif  // SRC_WAL_WAL_H_

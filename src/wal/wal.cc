#include "src/wal/wal.h"

#include <algorithm>
#include <cstring>

#include "src/common/codec.h"

namespace dfs {
namespace {

uint32_t Fnv1a(std::span<const uint8_t> bytes) {
  uint32_t h = 2166136261u;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= 16777619u;
  }
  return h;
}

}  // namespace

Wal::Wal(BlockDevice& dev, BufferCache& cache, Options options)
    : dev_(dev), cache_(cache), options_(options) {}

Status Wal::WriteHeader(const LogHeader& header) {
  std::vector<uint8_t> block(kBlockSize, 0);
  Writer w;
  w.PutU64(kHeaderMagic);
  w.PutU64(header.epoch);
  w.PutU64(header.epoch_start_lsn);
  std::memcpy(block.data(), w.data().data(), w.size());
  RETURN_IF_ERROR(dev_.Write(options_.log_start_block, block));
  return dev_.Flush();
}

Result<Wal::LogHeader> Wal::ReadHeader() {
  std::vector<uint8_t> block(kBlockSize);
  RETURN_IF_ERROR(dev_.Read(options_.log_start_block, block));
  Reader r(block);
  LogHeader h{};
  ASSIGN_OR_RETURN(h.magic, r.ReadU64());
  ASSIGN_OR_RETURN(h.epoch, r.ReadU64());
  ASSIGN_OR_RETURN(h.epoch_start_lsn, r.ReadU64());
  if (h.magic != kHeaderMagic) {
    return Status(ErrorCode::kCorrupt, "bad log header magic");
  }
  return h;
}

Status Wal::Format() {
  MutexLock lock(mu_);
  epoch_ = 1;
  epoch_start_lsn_ = 0;
  next_lsn_ = 0;
  durable_lsn_ = 0;
  pending_.clear();
  active_txns_.clear();
  return WriteHeader(LogHeader{kHeaderMagic, epoch_, epoch_start_lsn_});
}

TxnToken Wal::Begin() {
  // Checkpoint between transactions only: checkpointing mid-transaction would
  // flush uncommitted buffer changes whose undo records it then discards.
  bool checkpoint = false;
  {
    MutexLock lock(mu_);
    bool near_full = (next_lsn_ - epoch_start_lsn_) > LogDataBytes() * 3 / 4;
    checkpoint = near_full && active_txns_.empty();
  }
  if (checkpoint) {
    (void)Checkpoint();
  }
  MutexLock lock(mu_);
  TxnId txn = next_txn_++;
  active_txns_.emplace(txn, std::vector<UndoEntry>{});
  return TxnToken(txn);
}

Status Wal::AppendRecordLocked(RecordKind kind, TxnId txn, uint64_t blockno, uint32_t offset,
                               std::span<const uint8_t> old_bytes,
                               std::span<const uint8_t> new_bytes) {
  Writer w(64 + old_bytes.size() + new_bytes.size());
  w.PutU32(kRecordMagic);
  w.PutU32(0);  // total length, patched below
  w.PutU64(next_lsn_);
  w.PutU64(epoch_);
  w.PutU8(static_cast<uint8_t>(kind));
  w.PutU64(txn);
  w.PutU64(blockno);
  w.PutU32(offset);
  w.PutU32(static_cast<uint32_t>(new_bytes.size()));
  w.PutRaw(old_bytes);
  w.PutRaw(new_bytes);
  std::vector<uint8_t> rec = w.Take();
  uint32_t total = static_cast<uint32_t>(rec.size() + 4);
  std::memcpy(rec.data() + 4, &total, 4);
  uint32_t sum = Fnv1a(rec);
  rec.push_back(static_cast<uint8_t>(sum));
  rec.push_back(static_cast<uint8_t>(sum >> 8));
  rec.push_back(static_cast<uint8_t>(sum >> 16));
  rec.push_back(static_cast<uint8_t>(sum >> 24));

  if ((next_lsn_ - epoch_start_lsn_) + rec.size() > LogDataBytes()) {
    return Status(ErrorCode::kNoSpace, "log area full (transaction too large for log)");
  }
  pending_.insert(pending_.end(), rec.begin(), rec.end());
  next_lsn_ += rec.size();
  ++stats_.records;
  return Status::Ok();
}

Status Wal::LogUpdate(const TxnToken& txn, BufferCache::Ref& buf, uint32_t offset,
                      std::span<const uint8_t> new_bytes) {
  txn.AssertIssued();
  if (offset + new_bytes.size() > kBlockSize) {
    return Status(ErrorCode::kInvalidArgument, "update crosses block boundary");
  }
  MutexLock lock(mu_);
  auto it = active_txns_.find(txn.value());
  if (it == active_txns_.end()) {
    return Status(ErrorCode::kInvalidArgument, "unknown transaction");
  }
  std::span<const uint8_t> old_bytes(buf.data() + offset, new_bytes.size());
  it->second.push_back(UndoEntry{buf.blockno(), offset,
                                 std::vector<uint8_t>(old_bytes.begin(), old_bytes.end())});
  RETURN_IF_ERROR(AppendRecordLocked(RecordKind::kUpdate, txn.value(), buf.blockno(), offset,
                                     old_bytes, new_bytes));
  std::memcpy(buf.data() + offset, new_bytes.data(), new_bytes.size());
  cache_.MarkDirty(buf, next_lsn_);  // durable point: end of this record
  return Status::Ok();
}

Status Wal::Commit(const TxnToken& txn) {
  txn.AssertIssued();
  MutexLock lock(mu_);
  auto it = active_txns_.find(txn.value());
  if (it == active_txns_.end()) {
    return Status(ErrorCode::kInvalidArgument, "unknown transaction");
  }
  RETURN_IF_ERROR(AppendRecordLocked(RecordKind::kCommit, txn.value(), 0, 0, {}, {}));
  active_txns_.erase(it);
  ++stats_.commits;

  bool flush = options_.force_on_commit || pending_.size() >= options_.group_commit_bytes;
  if (!flush && options_.clock != nullptr) {
    flush = options_.clock->Now() - last_flush_time_ >= options_.group_commit_interval_ns;
  }
  if (flush) {
    return FlushLocked();
  }
  return Status::Ok();
}

Status Wal::Abort(const TxnToken& txn) {
  txn.AssertIssued();
  UniqueMutexLock lock(mu_);
  auto it = active_txns_.find(txn.value());
  if (it == active_txns_.end()) {
    return Status(ErrorCode::kInvalidArgument, "unknown transaction");
  }
  std::vector<UndoEntry> undo = std::move(it->second);
  active_txns_.erase(it);
  // Best effort: if the log area is full the abort record cannot be appended,
  // but recovery then sees an uncommitted transaction and undoes it — the same
  // outcome as the in-memory restoration below.
  (void)AppendRecordLocked(RecordKind::kAbort, txn.value(), 0, 0, {}, {});
  uint64_t abort_lsn = next_lsn_;
  ++stats_.aborts;
  lock.Unlock();

  // Restore old values in memory, newest change first. Recovery performs the
  // same restoration from the log, so the two paths are idempotent.
  for (auto rit = undo.rbegin(); rit != undo.rend(); ++rit) {
    ASSIGN_OR_RETURN(BufferCache::Ref buf, cache_.Get(rit->blockno));
    std::memcpy(buf.data() + rit->offset, rit->old_bytes.data(), rit->old_bytes.size());
    cache_.MarkDirty(buf, abort_lsn);
  }
  return Status::Ok();
}

Status Wal::FlushLocked() {
  if (pending_.empty()) {
    return Status::Ok();
  }
  uint64_t off = durable_lsn_ - epoch_start_lsn_;  // byte offset in the data area
  size_t consumed = 0;
  std::vector<uint8_t> block(kBlockSize);
  while (consumed < pending_.size()) {
    uint64_t blk = off / kBlockSize;
    uint32_t pos = static_cast<uint32_t>(off % kBlockSize);
    size_t chunk = std::min<size_t>(kBlockSize - pos, pending_.size() - consumed);
    uint64_t devblock = options_.log_start_block + 1 + blk;
    if (pos != 0) {
      // Partial block: merge with previously flushed bytes.
      RETURN_IF_ERROR(dev_.Read(devblock, block));
    } else {
      std::fill(block.begin(), block.end(), 0);
    }
    std::memcpy(block.data() + pos, pending_.data() + consumed, chunk);
    RETURN_IF_ERROR(dev_.Write(devblock, block));
    consumed += chunk;
    off += chunk;
  }
  RETURN_IF_ERROR(dev_.Flush());
  stats_.log_bytes_flushed += pending_.size();
  ++stats_.log_flushes;
  durable_lsn_ = next_lsn_;
  pending_.clear();
  if (options_.clock != nullptr) {
    last_flush_time_ = options_.clock->Now();
  }
  return Status::Ok();
}

Status Wal::Sync() {
  MutexLock lock(mu_);
  return FlushLocked();
}

Status Wal::MaybeGroupCommit() {
  MutexLock lock(mu_);
  if (options_.clock == nullptr || pending_.empty()) {
    return Status::Ok();
  }
  if (options_.clock->Now() - last_flush_time_ >= options_.group_commit_interval_ns) {
    return FlushLocked();
  }
  return Status::Ok();
}

Status Wal::FlushTo(uint64_t lsn) {
  MutexLock lock(mu_);
  if (durable_lsn_ >= lsn) {
    return Status::Ok();
  }
  return FlushLocked();
}

Status Wal::Checkpoint() {
  {
    MutexLock lock(mu_);
    RETURN_IF_ERROR(FlushLocked());
  }
  // Flush dirty buffers without holding our mutex: write-back calls FlushTo.
  RETURN_IF_ERROR(cache_.FlushAll());
  MutexLock lock(mu_);
  epoch_ += 1;
  epoch_start_lsn_ = next_lsn_;
  durable_lsn_ = next_lsn_;
  pending_.clear();
  ++stats_.checkpoints;
  return WriteHeader(LogHeader{kHeaderMagic, epoch_, epoch_start_lsn_});
}

Result<Wal::RecoveryStats> Wal::Recover() {
  MutexLock lock(mu_);
  ASSIGN_OR_RETURN(LogHeader header, ReadHeader());

  RecoveryStats rstats;

  // Scan records until the stream stops validating (torn tail from the
  // crash). Blocks are read lazily, so recovery I/O is proportional to the
  // *active* log, not to the log area — let alone the file system.
  struct Update {
    uint64_t lsn;
    TxnId txn;
    uint64_t blockno;
    uint32_t offset;
    std::vector<uint8_t> old_bytes;
    std::vector<uint8_t> new_bytes;
  };
  std::vector<Update> updates;
  std::vector<TxnId> committed;
  std::vector<TxnId> aborted;

  std::vector<uint8_t> area(LogDataBytes());
  std::vector<bool> loaded(options_.log_blocks, false);
  auto ensure_loaded = [&](uint64_t from, uint64_t len) -> Status {
    std::vector<uint8_t> block(kBlockSize);
    for (uint64_t b = from / kBlockSize; b * kBlockSize < from + len && b * kBlockSize < area.size();
         ++b) {
      if (!loaded[b]) {
        RETURN_IF_ERROR(dev_.Read(options_.log_start_block + 1 + b, block));
        std::memcpy(area.data() + b * kBlockSize, block.data(), kBlockSize);
        loaded[b] = true;
      }
    }
    return Status::Ok();
  };

  uint64_t off = 0;
  while (off + 12 <= area.size()) {
    RETURN_IF_ERROR(ensure_loaded(off, 12));
    Reader peek(std::span<const uint8_t>(area.data() + off, area.size() - off));
    auto magic = peek.ReadU32();
    if (!magic.ok() || *magic != kRecordMagic) {
      break;
    }
    auto total = peek.ReadU32();
    if (!total.ok() || *total < 45 || off + *total > area.size()) {
      break;
    }
    RETURN_IF_ERROR(ensure_loaded(off, *total));
    std::span<const uint8_t> rec(area.data() + off, *total);
    uint32_t stored_sum;
    std::memcpy(&stored_sum, rec.data() + rec.size() - 4, 4);
    if (Fnv1a(rec.subspan(0, rec.size() - 4)) != stored_sum) {
      break;
    }
    Reader r(rec.subspan(8, rec.size() - 12));
    auto lsn = r.ReadU64();
    auto epoch = r.ReadU64();
    auto kind = r.ReadU8();
    auto txn = r.ReadU64();
    auto blockno = r.ReadU64();
    auto roffset = r.ReadU32();
    auto datalen = r.ReadU32();
    if (!lsn.ok() || !epoch.ok() || !kind.ok() || !txn.ok() || !blockno.ok() || !roffset.ok() ||
        !datalen.ok()) {
      break;
    }
    if (*epoch != header.epoch || *lsn != header.epoch_start_lsn + off) {
      break;  // stale record from a previous epoch occupying this slot
    }
    if (r.Remaining() != static_cast<size_t>(*datalen) * 2) {
      break;
    }
    ++rstats.records_scanned;
    switch (static_cast<RecordKind>(*kind)) {
      case RecordKind::kUpdate: {
        Update u;
        u.lsn = *lsn;
        u.txn = *txn;
        u.blockno = *blockno;
        u.offset = *roffset;
        u.old_bytes.resize(*datalen);
        u.new_bytes.resize(*datalen);
        if (!r.ReadRaw(u.old_bytes).ok() || !r.ReadRaw(u.new_bytes).ok()) {
          return Status(ErrorCode::kCorrupt, "log record payload truncated");
        }
        updates.push_back(std::move(u));
        break;
      }
      case RecordKind::kCommit:
        committed.push_back(*txn);
        break;
      case RecordKind::kAbort:
        aborted.push_back(*txn);
        break;
    }
    off += *total;
  }
  rstats.bytes_scanned = off;

  auto is_in = [](const std::vector<TxnId>& v, TxnId t) {
    return std::find(v.begin(), v.end(), t) != v.end();
  };

  // Patch blocks in memory, then write each touched block once.
  std::map<uint64_t, std::vector<uint8_t>> patched;
  auto load = [&](uint64_t blockno) -> Status {
    if (patched.count(blockno) != 0) {
      return Status::Ok();
    }
    std::vector<uint8_t> img(kBlockSize);
    RETURN_IF_ERROR(dev_.Read(blockno, img));
    patched.emplace(blockno, std::move(img));
    return Status::Ok();
  };

  // Redo committed transactions in LSN order.
  std::vector<TxnId> redone;
  std::vector<TxnId> undone;
  for (const Update& u : updates) {
    if (is_in(committed, u.txn) && !is_in(aborted, u.txn)) {
      RETURN_IF_ERROR(load(u.blockno));
      std::memcpy(patched[u.blockno].data() + u.offset, u.new_bytes.data(), u.new_bytes.size());
      if (!is_in(redone, u.txn)) {
        redone.push_back(u.txn);
      }
    }
  }
  // Undo uncommitted (and aborted) transactions in reverse LSN order.
  for (auto it = updates.rbegin(); it != updates.rend(); ++it) {
    if (!is_in(committed, it->txn) || is_in(aborted, it->txn)) {
      RETURN_IF_ERROR(load(it->blockno));
      std::memcpy(patched[it->blockno].data() + it->offset, it->old_bytes.data(),
                  it->old_bytes.size());
      if (!is_in(undone, it->txn)) {
        undone.push_back(it->txn);
      }
    }
  }
  rstats.txns_redone = redone.size();
  rstats.txns_undone = undone.size();

  for (const auto& [blockno, img] : patched) {
    RETURN_IF_ERROR(dev_.Write(blockno, img));
    ++rstats.blocks_patched;
  }
  RETURN_IF_ERROR(dev_.Flush());

  // Reset the log and drop the (now stale) cache.
  epoch_ = header.epoch + 1;
  epoch_start_lsn_ = header.epoch_start_lsn + off;
  next_lsn_ = epoch_start_lsn_;
  durable_lsn_ = epoch_start_lsn_;
  pending_.clear();
  active_txns_.clear();
  RETURN_IF_ERROR(WriteHeader(LogHeader{kHeaderMagic, epoch_, epoch_start_lsn_}));
  cache_.InvalidateAll();
  return rstats;
}

Wal::Stats Wal::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

uint64_t Wal::next_lsn() const {
  MutexLock lock(mu_);
  return next_lsn_;
}

uint64_t Wal::active_bytes() const {
  MutexLock lock(mu_);
  return next_lsn_ - epoch_start_lsn_;
}

}  // namespace dfs

// Virtual clock for deterministic time-dependent behaviour.
//
// The NFS baseline's cache TTLs, the replication server's staleness bound, and
// the group-commit interval all read time from a VirtualClock that tests and
// benchmarks advance explicitly. This keeps every experiment deterministic and
// lets a benchmark "wait 30 seconds" in microseconds of wall time.
#ifndef SRC_COMMON_VCLOCK_H_
#define SRC_COMMON_VCLOCK_H_

#include <atomic>
#include <cstdint>

namespace dfs {

class VirtualClock {
 public:
  // Time unit: nanoseconds since an arbitrary epoch.
  uint64_t Now() const { return now_.load(std::memory_order_acquire); }

  void Advance(uint64_t delta_ns) { now_.fetch_add(delta_ns, std::memory_order_acq_rel); }
  void AdvanceMillis(uint64_t ms) { Advance(ms * 1'000'000ull); }
  void AdvanceSeconds(uint64_t s) { Advance(s * 1'000'000'000ull); }

  static constexpr uint64_t kMillisecond = 1'000'000ull;
  static constexpr uint64_t kSecond = 1'000'000'000ull;

 private:
  std::atomic<uint64_t> now_{0};
};

}  // namespace dfs

#endif  // SRC_COMMON_VCLOCK_H_

#include "src/common/lock_order.h"

#include <cstdio>
#include <cstdlib>

namespace dfs {
namespace {

struct HeldLock {
  LockLevel level;
  uint64_t tag;
  const char* name;
  bool shared;
};

thread_local std::vector<HeldLock> g_held;

}  // namespace

std::atomic<bool> LockOrderChecker::enabled_{true};
std::atomic<uint64_t> LockOrderChecker::checked_{0};

void LockOrderChecker::Enable(bool on) { enabled_.store(on, std::memory_order_release); }

bool LockOrderChecker::enabled() { return enabled_.load(std::memory_order_acquire); }

uint64_t LockOrderChecker::checked_count() { return checked_.load(std::memory_order_relaxed); }

void LockOrderChecker::NoteAcquire(LockLevel level, uint64_t tag, const char* name,
                                   bool shared) {
  if (!enabled()) {
    return;
  }
  checked_.fetch_add(1, std::memory_order_relaxed);
  if (!g_held.empty()) {
    const HeldLock& top = g_held.back();
    // Shared acquisitions obey the same partial order as exclusive ones: a
    // reader blocking behind a writer is still a lock wait, so only hierarchy
    // position matters for deadlock freedom.
    bool ok = (static_cast<uint32_t>(level) > static_cast<uint32_t>(top.level)) ||
              (level == top.level && tag > top.tag);
    if (!ok) {
      std::fprintf(stderr,
                   "LOCK ORDER VIOLATION: acquiring %s%s (level %u, tag %llu) while holding "
                   "%s%s (level %u, tag %llu)\n",
                   name, shared ? " [shared]" : "", static_cast<uint32_t>(level),
                   static_cast<unsigned long long>(tag), top.name,
                   top.shared ? " [shared]" : "", static_cast<uint32_t>(top.level),
                   static_cast<unsigned long long>(top.tag));
      std::abort();
    }
  }
  g_held.push_back(HeldLock{level, tag, name, shared});
}

void LockOrderChecker::NoteRelease(LockLevel level, uint64_t tag) {
  if (!enabled()) {
    return;
  }
  // Locks are normally released LIFO, but std::unique_lock allows out-of-order
  // release; erase the matching entry searching from the top.
  for (auto it = g_held.rbegin(); it != g_held.rend(); ++it) {
    if (it->level == level && it->tag == tag) {
      g_held.erase(std::next(it).base());
      return;
    }
  }
  // Releasing a lock acquired while the checker was disabled: ignore.
}

}  // namespace dfs

// Zero-cost capability tokens: protocol invariants in the type system.
//
// The thread-annotation macros (thread_annotations.h) let Clang check "this
// mutex is held here" at compile time. The same machinery generalizes from
// mutexes to arbitrary *protocol* invariants: declare an empty token type a
// TSA capability, let exactly one issuer class construct it, and pass it by
// reference through every function that is only legal while the invariant
// holds. Two independent layers then enforce the protocol:
//
//  1. Structural (any compiler, including GCC): the constructor is private
//     and the type is neither copyable nor movable, so the only way a
//     `const Token&` parameter can ever bind is to a live token minted by the
//     issuer. "Call the mutating helper without the protocol step" is a
//     compile error everywhere.
//  2. TSA (Clang -Wthread-safety): helpers annotated `REQUIRES(token)` are
//     checked against the capability set, so even code that *has* a token in
//     scope must be reachable from the point where it was issued.
//
// The pattern costs nothing at runtime: a token is one register-sized value
// (or empty), created once per protocol window and passed by reference.
//
// Usage:
//
//   class Wal;
//   using TxnToken = CapabilityToken<Wal, struct WalTxnTag, uint64_t>;
//
//   class Wal {
//    public:
//     TxnToken Begin() { return TxnToken(next_id_++); }   // sole mint point
//     Status Commit(const TxnToken& txn) REQUIRES(txn);
//   };
//
//   Status MutateSomething(const TxnToken& txn) REQUIRES(txn);
//
// A lambda or function that receives a token by parameter starts, under TSA,
// with an empty capability set; call `txn.AssertIssued()` first (the token
// analogue of Mutex::AssertHeld) to tell the analysis the invariant holds.
#ifndef SRC_COMMON_CAPABILITY_H_
#define SRC_COMMON_CAPABILITY_H_

#include <utility>

#include "src/common/thread_annotations.h"

namespace dfs {

// A capability token minted only by `Issuer`, carrying a `Value` payload
// (e.g. a transaction id). `Tag` distinguishes token kinds sharing an issuer:
//   using TxnToken = CapabilityToken<Wal, struct WalTxnTag, uint64_t>;
template <typename Issuer, typename Tag, typename Value>
class CAPABILITY("token") CapabilityToken {
 public:
  CapabilityToken(const CapabilityToken&) = delete;
  CapabilityToken& operator=(const CapabilityToken&) = delete;
  CapabilityToken(CapabilityToken&&) = delete;
  CapabilityToken& operator=(CapabilityToken&&) = delete;

  const Value& value() const { return value_; }

  // Tells the analysis the invariant holds here without re-proving it —
  // the token analogue of Mutex::AssertHeld. Call it at the top of a lambda
  // or out-of-line function body that took the token as a parameter.
  void AssertIssued() const ASSERT_CAPABILITY(this) {}

 private:
  friend Issuer;
  explicit CapabilityToken(Value value) : value_(std::move(value)) {}

  Value value_;
};

// Payload-free variant for pure "this step happened" invariants.
template <typename Issuer, typename Tag>
class CAPABILITY("token") UnitCapabilityToken {
 public:
  UnitCapabilityToken(const UnitCapabilityToken&) = delete;
  UnitCapabilityToken& operator=(const UnitCapabilityToken&) = delete;
  UnitCapabilityToken(UnitCapabilityToken&&) = delete;
  UnitCapabilityToken& operator=(UnitCapabilityToken&&) = delete;

  void AssertIssued() const ASSERT_CAPABILITY(this) {}

 private:
  friend Issuer;
  UnitCapabilityToken() = default;
};

}  // namespace dfs

#endif  // SRC_COMMON_CAPABILITY_H_

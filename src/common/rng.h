// Deterministic pseudo-random source for workload generators and property tests.
//
// SplitMix64: tiny, fast, and fully reproducible from a seed — every benchmark
// run and fuzz-style property test derives its workload from an explicit seed.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace dfs {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  bool Chance(double p) {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

  std::string Name(size_t len) {
    static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
    std::string out;
    out.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      out.push_back(kAlphabet[Below(sizeof(kAlphabet) - 1)]);
    }
    return out;
  }

 private:
  uint64_t state_;
};

}  // namespace dfs

#endif  // SRC_COMMON_RNG_H_

// Wire serialization for RPC messages and on-disk records.
//
// Fixed-width little-endian primitives plus length-prefixed byte strings.
// Writer appends to a growable buffer; Reader consumes a span and reports
// truncation as kCorrupt so malformed on-disk state and short RPC payloads
// surface as errors instead of undefined behaviour.
#ifndef SRC_COMMON_CODEC_H_
#define SRC_COMMON_CODEC_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace dfs {

class Writer {
 public:
  Writer() = default;
  explicit Writer(size_t reserve) { buf_.reserve(reserve); }

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutLe(v); }
  void PutU32(uint32_t v) { PutLe(v); }
  void PutU64(uint64_t v) { PutLe(v); }
  void PutI64(int64_t v) { PutLe(static_cast<uint64_t>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  void PutBytes(std::span<const uint8_t> bytes) {
    PutU32(static_cast<uint32_t>(bytes.size()));
    PutRaw(bytes);
  }
  void PutString(std::string_view s) {
    PutBytes(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
  }
  // Appends bytes with no length prefix (for fixed-size fields).
  void PutRaw(std::span<const uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void PutLe(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const uint8_t> data) : data_(data) {}

  Result<uint8_t> ReadU8() { return ReadLe<uint8_t>(); }
  Result<uint16_t> ReadU16() { return ReadLe<uint16_t>(); }
  Result<uint32_t> ReadU32() { return ReadLe<uint32_t>(); }
  Result<uint64_t> ReadU64() { return ReadLe<uint64_t>(); }
  Result<int64_t> ReadI64() {
    ASSIGN_OR_RETURN(uint64_t v, ReadLe<uint64_t>());
    return static_cast<int64_t>(v);
  }
  Result<bool> ReadBool() {
    ASSIGN_OR_RETURN(uint8_t v, ReadU8());
    return v != 0;
  }

  Result<std::vector<uint8_t>> ReadBytes() {
    ASSIGN_OR_RETURN(uint32_t n, ReadU32());
    if (n > Remaining()) {
      return Status(ErrorCode::kCorrupt, "byte string truncated");
    }
    std::vector<uint8_t> out(data_.begin() + static_cast<ptrdiff_t>(pos_),
                             data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  Result<std::string> ReadString() {
    ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadBytes());
    return std::string(bytes.begin(), bytes.end());
  }
  Status ReadRaw(std::span<uint8_t> out) {
    if (out.size() > Remaining()) {
      return Status(ErrorCode::kCorrupt, "raw field truncated");
    }
    std::memcpy(out.data(), data_.data() + pos_, out.size());
    pos_ += out.size();
    return Status::Ok();
  }

  size_t Remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return Remaining() == 0; }

 private:
  template <typename T>
  Result<T> ReadLe() {
    if (sizeof(T) > Remaining()) {
      return Status(ErrorCode::kCorrupt, "integer field truncated");
    }
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace dfs

#endif  // SRC_COMMON_CODEC_H_

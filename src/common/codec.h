// Wire serialization for RPC messages and on-disk records.
//
// Fixed-width little-endian primitives plus length-prefixed byte strings.
// Writer appends to a growable buffer; Reader consumes a span and reports
// truncation as kCorrupt so malformed on-disk state and short RPC payloads
// surface as errors instead of undefined behaviour.
//
// Scatter-gather: bulk payloads need not be copied into the byte stream.
// Writer::PutSlice records only the u32 length prefix in the head stream and
// carries the bytes out-of-band as a ref-counted BufferSlice; the resulting
// WireMessage is {head, segment list}. A Reader over a WireMessage hands the
// segment back (ReadSlice) without a copy; a Reader over a flat stream — or
// over a Flatten()ed message — decodes the same call sequence identically, so
// flat and scatter-gather encodings of one message are interchangeable on the
// decode side (the property test in tests/codec_test.cc holds this).
#ifndef SRC_COMMON_CODEC_H_
#define SRC_COMMON_CODEC_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/status.h"

namespace dfs {

// A serialized message: a contiguous head stream plus zero or more
// out-of-band segments. Each segment's `offset` is the head position right
// after its u32 length prefix — where its bytes would sit if the message were
// flat. Segments appear in ascending offset order (Writer appends in order).
struct WireMessage {
  struct Segment {
    size_t offset = 0;
    BufferSlice slice;
  };

  std::vector<uint8_t> head;
  std::vector<Segment> segments;

  WireMessage() = default;
  // Implicit on purpose: a flat byte vector is a message with no segments,
  // which keeps header-only call sites (the vast majority) unchanged.
  WireMessage(std::vector<uint8_t> flat) : head(std::move(flat)) {}  // NOLINT

  // Bytes this message puts on the wire: head plus all out-of-band segments.
  size_t total_bytes() const {
    size_t n = head.size();
    for (const Segment& s : segments) {
      n += s.slice.size();
    }
    return n;
  }

  // Materializes the flat encoding: segment bytes spliced into the head at
  // their recorded offsets. The one deliberate full copy on the wire path;
  // only tests and flat-format consumers (dumps) should need it.
  std::vector<uint8_t> Flatten() const {
    std::vector<uint8_t> out;
    out.reserve(total_bytes());
    size_t pos = 0;
    for (const Segment& s : segments) {
      out.insert(out.end(), head.begin() + static_cast<ptrdiff_t>(pos),
                 head.begin() + static_cast<ptrdiff_t>(s.offset));
      out.insert(out.end(), s.slice.data(), s.slice.data() + s.slice.size());
      pos = s.offset;
    }
    out.insert(out.end(), head.begin() + static_cast<ptrdiff_t>(pos), head.end());
    return out;
  }
};

class Writer {
 public:
  Writer() = default;
  explicit Writer(size_t reserve) { buf_.reserve(reserve); }

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutLe(v); }
  void PutU32(uint32_t v) { PutLe(v); }
  void PutU64(uint64_t v) { PutLe(v); }
  void PutI64(int64_t v) { PutLe(static_cast<uint64_t>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  void PutBytes(std::span<const uint8_t> bytes) {
    PutU32(static_cast<uint32_t>(bytes.size()));
    PutRaw(bytes);
  }
  void PutString(std::string_view s) {
    PutBytes(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
  }
  // Appends bytes with no length prefix (for fixed-size fields).
  void PutRaw(std::span<const uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  // Length-prefixed like PutBytes, but the bytes ride out-of-band: only the
  // u32 prefix lands in the head, the slice itself is carried by reference in
  // the message's segment list. Pair with Reader::ReadSlice (or ReadBytes —
  // both decode either encoding).
  void PutSlice(BufferSlice slice) {
    PutU32(static_cast<uint32_t>(slice.size()));
    segments_.push_back({buf_.size(), std::move(slice)});
  }

  // The head stream only; any PutSlice segments are not included. Call sites
  // that may carry segments must ship a WireMessage instead.
  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

  bool has_segments() const { return !segments_.empty(); }

  // Moves the head and segment list out as a sendable message.
  WireMessage TakeMessage() {
    WireMessage m;
    m.head = std::move(buf_);
    m.segments = std::move(segments_);
    return m;
  }

  // Copy of the message: the head bytes are duplicated (they are small), the
  // segments share their regions by reference. Lets a caller re-send the same
  // request on a retry loop without rebuilding it.
  WireMessage Message() const {
    WireMessage m;
    m.head = buf_;
    m.segments = segments_;
    return m;
  }

 private:
  template <typename T>
  void PutLe(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t> buf_;
  std::vector<WireMessage::Segment> segments_;
};

class Reader {
 public:
  explicit Reader(std::span<const uint8_t> data) : data_(data) {}
  // Exact match for the ubiquitous `Reader r(vec)` call sites — a vector
  // converts to both span and WireMessage, which would otherwise be ambiguous.
  explicit Reader(const std::vector<uint8_t>& data)
      : data_(std::span<const uint8_t>(data)) {}
  // Reader over a scatter-gather message; `m` must outlive the reader. The
  // head is the byte stream; out-of-band segments surface from ReadSlice /
  // ReadBytes at their recorded positions.
  explicit Reader(const WireMessage& m) : data_(m.head), segments_(&m.segments) {}

  Result<uint8_t> ReadU8() { return ReadLe<uint8_t>(); }
  Result<uint16_t> ReadU16() { return ReadLe<uint16_t>(); }
  Result<uint32_t> ReadU32() { return ReadLe<uint32_t>(); }
  Result<uint64_t> ReadU64() { return ReadLe<uint64_t>(); }
  Result<int64_t> ReadI64() {
    ASSIGN_OR_RETURN(uint64_t v, ReadLe<uint64_t>());
    return static_cast<int64_t>(v);
  }
  Result<bool> ReadBool() {
    ASSIGN_OR_RETURN(uint8_t v, ReadU8());
    return v != 0;
  }

  Result<std::vector<uint8_t>> ReadBytes() {
    ASSIGN_OR_RETURN(uint32_t n, ReadU32());
    if (const BufferSlice* seg = SegmentHere(n)) {
      return std::vector<uint8_t>(seg->data(), seg->data() + seg->size());
    }
    if (n > Remaining()) {
      return Status(ErrorCode::kCorrupt, "byte string truncated");
    }
    std::vector<uint8_t> out(data_.begin() + static_cast<ptrdiff_t>(pos_),
                             data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  // Zero-copy counterpart of ReadBytes: an out-of-band segment at this
  // position is returned by reference (shared region, no copy); a flat
  // encoding falls back to copying the inline bytes into a fresh slice.
  Result<BufferSlice> ReadSlice() {
    ASSIGN_OR_RETURN(uint32_t n, ReadU32());
    if (const BufferSlice* seg = SegmentHere(n)) {
      return *seg;
    }
    if (n > Remaining()) {
      return Status(ErrorCode::kCorrupt, "byte string truncated");
    }
    BufferSlice out = BufferSlice::CopyOf(data_.subspan(pos_, n));
    pos_ += n;
    return out;
  }
  Result<std::string> ReadString() {
    ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadBytes());
    return std::string(bytes.begin(), bytes.end());
  }
  Status ReadRaw(std::span<uint8_t> out) {
    if (out.size() > Remaining()) {
      return Status(ErrorCode::kCorrupt, "raw field truncated");
    }
    std::memcpy(out.data(), data_.data() + pos_, out.size());
    pos_ += out.size();
    return Status::Ok();
  }

  size_t Remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return Remaining() == 0; }

 private:
  template <typename T>
  Result<T> ReadLe() {
    if (sizeof(T) > Remaining()) {
      return Status(ErrorCode::kCorrupt, "integer field truncated");
    }
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  // Consumes and returns the next out-of-band segment iff one sits exactly at
  // the current head position with the expected length (segments are ordered,
  // so one cursor suffices). Null when reading a flat stream or the field was
  // encoded inline.
  const BufferSlice* SegmentHere(uint32_t expected_len) {
    if (segments_ == nullptr || next_segment_ >= segments_->size()) {
      return nullptr;
    }
    const WireMessage::Segment& s = (*segments_)[next_segment_];
    if (s.offset != pos_ || s.slice.size() != expected_len) {
      return nullptr;
    }
    ++next_segment_;
    return &s.slice;
  }

  std::span<const uint8_t> data_;
  const std::vector<WireMessage::Segment>* segments_ = nullptr;
  size_t next_segment_ = 0;
  size_t pos_ = 0;
};

}  // namespace dfs

#endif  // SRC_COMMON_CODEC_H_

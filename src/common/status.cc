#include "src/common/status.h"

namespace dfs {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kExists:
      return "EXISTS";
    case ErrorCode::kNotDirectory:
      return "NOT_DIRECTORY";
    case ErrorCode::kIsDirectory:
      return "IS_DIRECTORY";
    case ErrorCode::kNotEmpty:
      return "NOT_EMPTY";
    case ErrorCode::kNoSpace:
      return "NO_SPACE";
    case ErrorCode::kNoAnodes:
      return "NO_ANODES";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case ErrorCode::kTextBusy:
      return "TEXT_BUSY";
    case ErrorCode::kIoError:
      return "IO_ERROR";
    case ErrorCode::kCorrupt:
      return "CORRUPT";
    case ErrorCode::kStale:
      return "STALE";
    case ErrorCode::kBusy:
      return "BUSY";
    case ErrorCode::kWouldBlock:
      return "WOULD_BLOCK";
    case ErrorCode::kConflict:
      return "CONFLICT";
    case ErrorCode::kTimedOut:
      return "TIMED_OUT";
    case ErrorCode::kNotSupported:
      return "NOT_SUPPORTED";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kAborted:
      return "ABORTED";
    case ErrorCode::kCrashed:
      return "CRASHED";
    case ErrorCode::kAuthFailed:
      return "AUTH_FAILED";
    case ErrorCode::kNameTooLong:
      return "NAME_TOO_LONG";
    case ErrorCode::kCrossVolume:
      return "CROSS_VOLUME";
    case ErrorCode::kQuota:
      return "QUOTA";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kRecovering:
      return "RECOVERING";
    case ErrorCode::kStaleEpoch:
      return "STALE_EPOCH";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(ErrorCodeName(code_));
  if (message_ && !message_->empty()) {
    out += ": ";
    out += *message_;
  }
  return out;
}

}  // namespace dfs

// Error model for the DEcorum file system reproduction.
//
// Status carries an error code plus a human-readable message; Result<T> is a
// Status-or-value. Modeled on absl::Status / zx_status_t idioms: cheap to copy
// in the OK case, explicit propagation via RETURN_IF_ERROR / ASSIGN_OR_RETURN.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace dfs {

// Error codes cover the union of local-file-system errors (ENOENT-style), the
// distributed layer (stale FIDs, busy volumes), and the logging layer.
enum class ErrorCode : uint16_t {
  kOk = 0,
  kNotFound,           // ENOENT
  kExists,             // EEXIST
  kNotDirectory,       // ENOTDIR
  kIsDirectory,        // EISDIR
  kNotEmpty,           // ENOTEMPTY
  kNoSpace,            // ENOSPC
  kNoAnodes,           // out of anode-table slots (EFBIG-ish)
  kInvalidArgument,    // EINVAL
  kPermissionDenied,   // EACCES (ACL check failed)
  kTextBusy,           // ETXTBSY (open-token execute/write conflict)
  kIoError,            // EIO
  kCorrupt,            // on-disk structure failed validation
  kStale,              // FID no longer valid (ESTALE)
  kBusy,               // volume busy (being moved/cloned); retry via VLDB
  kWouldBlock,         // lock not available
  kConflict,           // token conflict that cannot be resolved by revocation
  kTimedOut,
  kNotSupported,       // VFS+ extension missing on this physical file system
  kUnavailable,        // server/node down
  kAborted,            // transaction aborted
  kCrashed,            // simulated crash interrupted the operation
  kAuthFailed,         // bad ticket
  kNameTooLong,        // ENAMETOOLONG
  kCrossVolume,        // EXDEV (rename across volumes)
  kQuota,              // volume quota exceeded
  kInternal,
  // Appended after kInternal so existing wire-encoded values stay stable.
  kRecovering,         // server in post-restart grace period; reassert + retry
  kStaleEpoch,         // caller's server epoch is from a previous incarnation
};

// Short upper-case name for an error code ("NOT_FOUND"), for logs and tests.
std::string_view ErrorCodeName(ErrorCode code);

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(ErrorCode code, std::string message)
      : code_(code),
        message_(code == ErrorCode::kOk ? nullptr
                                        : std::make_shared<std::string>(std::move(message))) {}

  static Status Ok() { return Status(); }
  static Status Error(ErrorCode code, std::string message) {
    return Status(code, std::move(message));
  }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  std::string_view message() const {
    return message_ ? std::string_view(*message_) : std::string_view();
  }
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::shared_ptr<std::string> message_;  // shared so copies stay cheap
};

template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit: allows `return value;` and `return status;`.
  Result(T value) : rep_(std::move(value)) {}
  Result(Status status) : rep_(std::move(status)) {}
  Result(ErrorCode code, std::string message) : rep_(Status(code, std::move(message))) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const { return ok() ? Status::Ok() : std::get<Status>(rep_); }
  ErrorCode code() const { return ok() ? ErrorCode::kOk : std::get<Status>(rep_).code(); }

 private:
  std::variant<Status, T> rep_;
};

// Evaluates `expr` (a Status); returns it from the enclosing function on error.
#define RETURN_IF_ERROR(expr)                  \
  do {                                         \
    ::dfs::Status status_macro_tmp_ = (expr);  \
    if (!status_macro_tmp_.ok()) {             \
      return status_macro_tmp_;                \
    }                                          \
  } while (0)

#define DFS_CONCAT_INNER_(a, b) a##b
#define DFS_CONCAT_(a, b) DFS_CONCAT_INNER_(a, b)

// ASSIGN_OR_RETURN(auto x, SomeResultExpr()): binds the value or propagates.
#define ASSIGN_OR_RETURN(decl, expr)                                  \
  auto DFS_CONCAT_(result_macro_tmp_, __LINE__) = (expr);             \
  if (!DFS_CONCAT_(result_macro_tmp_, __LINE__).ok()) {               \
    return DFS_CONCAT_(result_macro_tmp_, __LINE__).status();         \
  }                                                                   \
  decl = std::move(DFS_CONCAT_(result_macro_tmp_, __LINE__)).value()

}  // namespace dfs

#endif  // SRC_COMMON_STATUS_H_

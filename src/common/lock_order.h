// Runtime enforcement of the Section-6 locking hierarchy.
//
// The paper avoids deadlock by a partial order on locked resources:
//
//   L1  client high-level cvnode operation lock   (held across the whole op, incl. RPCs)
//   L2  server vnode/token-state lock             (the serialization point)
//   L3  client low-level cvnode state lock        (never held across client-initiated RPCs)
//   L4  server file-I/O lock                      (taken by both normal stores and the
//                                                  special revocation-initiated stores, so a
//                                                  revocation handler holding L3 may call
//                                                  back into the server, Section 6.4)
//
// Every distributed-layer mutex in this codebase is an OrderedMutex carrying one of these
// levels. A thread-local stack records the levels currently held; acquiring a lock whose
// (level, tag) is not strictly greater than the top of the stack aborts the process with a
// diagnostic. Within one level, multiple locks may be taken in increasing `tag` order (the
// paper orders multi-vnode operations, e.g. rename, by FID). Leaf mutexes that never call
// out (buffer-cache internals, statistics) are ordinary std::mutex and are exempt.
#ifndef SRC_COMMON_LOCK_ORDER_H_
#define SRC_COMMON_LOCK_ORDER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dfs {

enum class LockLevel : uint32_t {
  kClientHigh = 100,   // L1
  kServerVnode = 200,  // L2
  kClientLow = 300,    // L3
  kServerIo = 400,     // L4
};

// Process-global switch; tests arm it (fatal on violation), benches may disable
// to measure the checker's own overhead.
class LockOrderChecker {
 public:
  static void Enable(bool on);
  static bool enabled();

  // Called by OrderedMutex around lock/unlock. Aborts on violation when enabled.
  static void NoteAcquire(LockLevel level, uint64_t tag, const char* name);
  static void NoteRelease(LockLevel level, uint64_t tag);

  // Total acquisitions checked (for the E9 stress bench's sanity output).
  static uint64_t checked_count();

 private:
  static std::atomic<bool> enabled_;
  static std::atomic<uint64_t> checked_;
};

// A mutex with a hierarchy level and per-object tag. Same-level locks must be
// acquired in increasing tag order.
class OrderedMutex {
 public:
  OrderedMutex(LockLevel level, uint64_t tag, const char* name)
      : level_(level), tag_(tag), name_(name) {}

  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  void lock() {
    LockOrderChecker::NoteAcquire(level_, tag_, name_);
    mu_.lock();
  }
  void unlock() {
    mu_.unlock();
    LockOrderChecker::NoteRelease(level_, tag_);
  }
  bool try_lock() {
    if (!mu_.try_lock()) {
      return false;
    }
    LockOrderChecker::NoteAcquire(level_, tag_, name_);
    return true;
  }

  LockLevel level() const { return level_; }
  uint64_t tag() const { return tag_; }

 private:
  LockLevel level_;
  uint64_t tag_;
  const char* name_;
  std::mutex mu_;
};

}  // namespace dfs

#endif  // SRC_COMMON_LOCK_ORDER_H_

// Enforcement of the Section-6 locking hierarchy — runtime and compile time.
//
// The paper avoids deadlock by a partial order on locked resources:
//
//   L1  client high-level cvnode operation lock   (held across the whole op, incl. RPCs)
//   L2  server vnode/token-state lock             (the serialization point)
//   L3  client low-level cvnode state lock        (never held across client-initiated RPCs)
//   L4  server file-I/O lock                      (taken by both normal stores and the
//                                                  special revocation-initiated stores, so a
//                                                  revocation handler holding L3 may call
//                                                  back into the server, Section 6.4)
//
// Every distributed-layer mutex in this codebase is an OrderedMutex carrying one of these
// levels. Two checkers cover it:
//
//   - Runtime (LockOrderChecker): a thread-local stack records the levels currently held;
//     acquiring a lock whose (level, tag) is not strictly greater than the top of the stack
//     aborts the process with a diagnostic. Within one level, multiple locks may be taken in
//     increasing `tag` order (the paper orders multi-vnode operations, e.g. rename, by FID).
//   - Compile time (Clang TSA): OrderedMutex is a CAPABILITY and OrderedLockGuard a
//     SCOPED_CAPABILITY, so GUARDED_BY/REQUIRES annotations over them are checked by
//     -Wthread-safety (the DFS_THREAD_SAFETY build). See src/common/thread_annotations.h.
//
// Leaf mutexes that never call out (buffer-cache internals, statistics) are dfs::Mutex
// (src/common/mutex.h) and are exempt from the hierarchy; in the distributed layer each
// one must carry a `// LOCK-EXEMPT(leaf): <reason>` comment, enforced by
// tools/lint_lock_discipline.py.
#ifndef SRC_COMMON_LOCK_ORDER_H_
#define SRC_COMMON_LOCK_ORDER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/common/thread_annotations.h"

namespace dfs {

enum class LockLevel : uint32_t {
  kClientHigh = 100,    // L1
  kServerVnode = 200,   // L2
  kClientLow = 300,     // L3
  // Client prefetcher stream map: the readahead window state machine. May be
  // consulted while a cvnode low lock (L3) is held (revocations cancel the
  // file's stream in place), and never holds anything else while held.
  kClientPrefetch = 350,
  kServerIo = 400,      // L4
  // Sub-levels above L4: the token manager's bookkeeping, acquired from RPC
  // handlers that may already hold the vnode (L2) and file-I/O (L4) locks
  // (grant before an op, return after it), but never across an outbound RPC.
  kTokenShard = 450,    // token-manager shard (tag = shard index)
  kHostRegistry = 460,  // read-mostly host/handler table
  // Read-mostly leaf-most maps (VLDB location maps): may be acquired with any
  // of the above held, and never hold anything else while held.
  kVldbMap = 500,
};

// Process-global switch; tests arm it (fatal on violation), benches may disable
// to measure the checker's own overhead.
class LockOrderChecker {
 public:
  static void Enable(bool on);
  static bool enabled();

  // Called by OrderedMutex around lock/unlock. Aborts on violation when
  // enabled. Shared (reader) acquisitions follow the same partial order —
  // hierarchy position, not exclusivity, is what prevents deadlock — and are
  // flagged in diagnostics.
  static void NoteAcquire(LockLevel level, uint64_t tag, const char* name,
                          bool shared = false);
  static void NoteRelease(LockLevel level, uint64_t tag);

  // Total acquisitions checked (for the E9 stress bench's sanity output).
  static uint64_t checked_count();

 private:
  static std::atomic<bool> enabled_;
  static std::atomic<uint64_t> checked_;
};

// A mutex with a hierarchy level and per-object tag. Same-level locks must be
// acquired in increasing tag order.
class CAPABILITY("ordered_mutex") OrderedMutex {
 public:
  OrderedMutex(LockLevel level, uint64_t tag, const char* name)
      : level_(level), tag_(tag), name_(name) {}

  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  void lock() ACQUIRE() {
    LockOrderChecker::NoteAcquire(level_, tag_, name_);
    mu_.lock();
  }
  void unlock() RELEASE() {
    mu_.unlock();
    LockOrderChecker::NoteRelease(level_, tag_);
  }
  // The hierarchy is checked (and violations abort) *before* the underlying
  // acquisition, mirroring lock(): aborting while holding the mutex would
  // leave it locked across the abort handler, and the checker's held-stack
  // would already disagree with reality.
  bool try_lock() TRY_ACQUIRE(true) {
    LockOrderChecker::NoteAcquire(level_, tag_, name_);
    if (!mu_.try_lock()) {
      LockOrderChecker::NoteRelease(level_, tag_);
      return false;
    }
    return true;
  }

  // Tells the analysis the lock is held here without checking it at runtime.
  // For code reached only through a lock-holding caller the analysis cannot
  // see across (e.g. lambdas run under a caller's guard); prefer REQUIRES.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

  LockLevel level() const { return level_; }
  uint64_t tag() const { return tag_; }

 private:
  // GUARD-EXEMPT: set in the constructor, immutable thereafter.
  LockLevel level_;
  // GUARD-EXEMPT: set in the constructor, immutable thereafter.
  uint64_t tag_;
  const char* name_;
  std::mutex mu_;
};

// std::lock_guard over an OrderedMutex, visible to the static analysis.
class SCOPED_CAPABILITY OrderedLockGuard {
 public:
  explicit OrderedLockGuard(OrderedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~OrderedLockGuard() RELEASE() { mu_.unlock(); }

  OrderedLockGuard(const OrderedLockGuard&) = delete;
  OrderedLockGuard& operator=(const OrderedLockGuard&) = delete;

 private:
  OrderedMutex& mu_;
};

// std::unique_lock-style guard over an OrderedMutex, for condition-variable
// waits (std::condition_variable_any). A wait releases and reacquires through
// lock()/unlock(), so the runtime checker's held-stack stays exact across the
// wait; the static analysis cannot see inside the wait (same caveat as
// UniqueMutexLock in mutex.h) but the lock is held again at every statement
// it checks.
class SCOPED_CAPABILITY OrderedUniqueLock {
 public:
  explicit OrderedUniqueLock(OrderedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~OrderedUniqueLock() RELEASE() { mu_.unlock(); }

  OrderedUniqueLock(const OrderedUniqueLock&) = delete;
  OrderedUniqueLock& operator=(const OrderedUniqueLock&) = delete;

  // BasicLockable, for std::condition_variable_any only — everything else
  // holds the guard for its full scope.
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  OrderedMutex& mu_;
};

// Conditionally-acquired OrderedLockGuard: locks when constructed with a
// non-null mutex, a no-op otherwise. Replaces std::optional<OrderedLockGuard>
// at sites like the cross-directory rename second lock and the
// revocation-path store, which the static analysis could not see into. The
// analysis conservatively treats the capability as held for the whole scope
// (the abseil MutexLockMaybe convention) — sound, because the null case only
// ever skips the lock when the guarded state is not touched on that path.
class SCOPED_CAPABILITY MaybeLockGuard {
 public:
  explicit MaybeLockGuard(OrderedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    if (mu_ != nullptr) {
      mu_->lock();
    }
  }
  ~MaybeLockGuard() RELEASE() {
    if (mu_ != nullptr) {
      mu_->unlock();
    }
  }

  MaybeLockGuard(const MaybeLockGuard&) = delete;
  MaybeLockGuard& operator=(const MaybeLockGuard&) = delete;

  bool held() const { return mu_ != nullptr; }

 private:
  OrderedMutex* mu_;
};

// A reader/writer mutex on the hierarchy: shared (reader) acquisitions
// coexist with each other, exclusive (writer) acquisitions are solitary, and
// *both* obey the Section-6 partial order — a reader that could block behind
// a writer is still a lock wait, so hierarchy position is what keeps it
// deadlock-free. For read-mostly tables (the VLDB location map, the token
// manager's host registry) where grants and lookups vastly outnumber
// registrations.
class SHARED_CAPABILITY("shared_ordered_mutex") SharedOrderedMutex {
 public:
  SharedOrderedMutex(LockLevel level, uint64_t tag, const char* name)
      : level_(level), tag_(tag), name_(name) {}

  SharedOrderedMutex(const SharedOrderedMutex&) = delete;
  SharedOrderedMutex& operator=(const SharedOrderedMutex&) = delete;

  void lock() ACQUIRE() {
    LockOrderChecker::NoteAcquire(level_, tag_, name_);
    mu_.lock();
  }
  void unlock() RELEASE() {
    mu_.unlock();
    LockOrderChecker::NoteRelease(level_, tag_);
  }
  void lock_shared() ACQUIRE_SHARED() {
    LockOrderChecker::NoteAcquire(level_, tag_, name_, /*shared=*/true);
    mu_.lock_shared();
  }
  void unlock_shared() RELEASE_SHARED() {
    mu_.unlock_shared();
    LockOrderChecker::NoteRelease(level_, tag_);
  }

  // Tells the analysis the lock is held here without checking it at runtime.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

  LockLevel level() const { return level_; }
  uint64_t tag() const { return tag_; }

 private:
  // GUARD-EXEMPT: set in the constructor, immutable thereafter.
  LockLevel level_;
  // GUARD-EXEMPT: set in the constructor, immutable thereafter.
  uint64_t tag_;
  const char* name_;
  std::shared_mutex mu_;
};

// Writer guard over a SharedOrderedMutex.
class SCOPED_CAPABILITY SharedOrderedLockGuard {
 public:
  explicit SharedOrderedLockGuard(SharedOrderedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~SharedOrderedLockGuard() RELEASE() { mu_.unlock(); }

  SharedOrderedLockGuard(const SharedOrderedLockGuard&) = delete;
  SharedOrderedLockGuard& operator=(const SharedOrderedLockGuard&) = delete;

 private:
  SharedOrderedMutex& mu_;
};

// Reader guard over a SharedOrderedMutex.
class SCOPED_CAPABILITY SharedOrderedReadGuard {
 public:
  explicit SharedOrderedReadGuard(SharedOrderedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~SharedOrderedReadGuard() RELEASE() { mu_.unlock_shared(); }

  SharedOrderedReadGuard(const SharedOrderedReadGuard&) = delete;
  SharedOrderedReadGuard& operator=(const SharedOrderedReadGuard&) = delete;

 private:
  SharedOrderedMutex& mu_;
};

}  // namespace dfs

#endif  // SRC_COMMON_LOCK_ORDER_H_

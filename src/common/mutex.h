// Annotated leaf-mutex wrappers.
//
// libstdc++'s std::mutex / std::lock_guard carry no thread-safety attributes,
// so Clang's analysis cannot see them acquire anything. dfs::Mutex wraps
// std::mutex as a CAPABILITY and MutexLock / UniqueMutexLock are the
// SCOPED_CAPABILITY guards; CondVar pairs with UniqueMutexLock for waits.
//
// These are for *leaf* locks only — locks that never call out while held
// (statistics, container maps, device state). Anything on the Section-6
// hierarchy (L1–L4) must be an OrderedMutex from src/common/lock_order.h,
// which is both a capability for the static analysis and a runtime-checked
// ordered lock; tools/lint_lock_discipline.py enforces that split for the
// distributed layer (src/tokens, src/client, src/server).
#ifndef SRC_COMMON_MUTEX_H_
#define SRC_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/common/thread_annotations.h"

namespace dfs {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Tells the analysis the lock is held here without checking it at runtime.
  // For code reached only through a lock-holding caller the analysis cannot
  // see across (e.g. callbacks run under RunTxn); prefer REQUIRES elsewhere.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

  // For CondVar only; everything else goes through the guards.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

// std::lock_guard equivalent.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// std::unique_lock equivalent, for CondVar waits and guards that must unlock
// early. The analysis models the common pattern (construct = acquire,
// destruct/Unlock = release); a CondVar wait releases and reacquires
// internally, which is invisible to the analysis but holds the lock again
// before returning, so the guarantee at every statement the analysis checks
// is unchanged.
class SCOPED_CAPABILITY UniqueMutexLock {
 public:
  explicit UniqueMutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), lock_(mu.native()) {}
  ~UniqueMutexLock() RELEASE() {}

  UniqueMutexLock(const UniqueMutexLock&) = delete;
  UniqueMutexLock& operator=(const UniqueMutexLock&) = delete;

  // Early release; the destructor then releases nothing. Callers must not
  // touch guarded state between Unlock() and destruction.
  void Unlock() RELEASE() { lock_.unlock(); }
  void Lock() ACQUIRE() { lock_.lock(); }

  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  Mutex& mu_;
  std::unique_lock<std::mutex> lock_;
};

// Condition variable over dfs::Mutex. No predicate overloads on purpose:
// Clang analyzes lambda bodies as separate functions, so a predicate reading
// GUARDED_BY state would warn. Write waits as explicit loops —
//
//   UniqueMutexLock lock(mu_);
//   while (!ready_) cv_.Wait(lock);
//
// — which the analysis checks naturally.
class CondVar {
 public:
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  void Wait(UniqueMutexLock& lock) { cv_.wait(lock.native()); }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(UniqueMutexLock& lock,
                           const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.native(), deadline);
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(UniqueMutexLock& lock,
                         const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.native(), timeout);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace dfs

#endif  // SRC_COMMON_MUTEX_H_

#include "src/common/thread_pool.h"

namespace dfs {

ThreadPool::ThreadPool(size_t num_threads, const char* name) : name_(name) {
  (void)name_;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : workers_) {
    t.join();
  }
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (shutdown_) {
      return false;
    }
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
  return true;
}

void ThreadPool::Drain() {
  UniqueMutexLock lock(mu_);
  while (!(queue_.empty() && busy_ == 0)) {
    idle_cv_.Wait(lock);
  }
}

size_t ThreadPool::busy() const {
  MutexLock lock(mu_);
  return busy_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      UniqueMutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) {
        cv_.Wait(lock);
      }
      if (shutdown_ && queue_.empty()) {
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++busy_;
    }
    task();
    {
      MutexLock lock(mu_);
      --busy_;
      if (queue_.empty() && busy_ == 0) {
        idle_cv_.NotifyAll();
      }
    }
  }
}

}  // namespace dfs

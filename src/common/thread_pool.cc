#include "src/common/thread_pool.h"

namespace dfs {

ThreadPool::ThreadPool(size_t num_threads, const char* name) : name_(name) {
  (void)name_;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return false;
    }
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && busy_ == 0; });
}

size_t ThreadPool::busy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return busy_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) {
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++busy_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_;
      if (queue_.empty() && busy_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

}  // namespace dfs

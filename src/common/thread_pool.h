// Fixed-size worker pool used by RPC endpoints.
//
// The protocol exporter runs two pools: the regular request pool and a small
// dedicated pool for revocation-initiated callbacks (Section 6.4: if only one
// pool existed, all threads could be busy when a token-revocation handler
// needs to call back to the server, deadlocking the system).
#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/mutex.h"

namespace dfs {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads, const char* name = "pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Returns false if the pool is shutting down.
  bool Submit(std::function<void()> task);

  // Blocks until the queue is empty and all workers are idle.
  void Drain();

  size_t size() const { return workers_.size(); }
  // Number of workers currently executing a task (approximate; for the
  // pool-exhaustion demonstration in E9).
  size_t busy() const;

 private:
  void WorkerLoop();

  const char* name_;
  mutable Mutex mu_;
  CondVar cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  // GUARD-EXEMPT: filled in the constructor, joined in the destructor; no
  // concurrent mutation in between.
  std::vector<std::thread> workers_;
  size_t busy_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace dfs

#endif  // SRC_COMMON_THREAD_POOL_H_

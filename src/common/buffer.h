// Ref-counted, immutable byte buffers for the zero-copy data path.
//
// A BufferSlice is a view (offset + length) into a shared, immutable byte
// region. Copying a slice bumps a reference count; Sub() carves a narrower
// view for free. The region stays alive as long as any slice refers to it, so
// a block handed from an RPC reply into the client cache — and from the cache
// to a reader — survives cache eviction and token revocation without ever
// being memcpy'd. Immutability is the safety argument: writers never mutate a
// published region, they publish a *new* region and replace the reference, so
// concurrent readers holding old slices see a stable snapshot (the TSAN race
// test in tests/buffer_slice_test.cc pins this down).
#ifndef SRC_COMMON_BUFFER_H_
#define SRC_COMMON_BUFFER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace dfs {

class BufferSlice {
 public:
  // Empty slice: no backing region, zero length.
  BufferSlice() = default;

  // Takes ownership of `bytes` with no copy; the vector's storage becomes the
  // shared region.
  static BufferSlice TakeOwnership(std::vector<uint8_t>&& bytes) {
    auto owner = std::make_shared<const std::vector<uint8_t>>(std::move(bytes));
    size_t n = owner->size();
    return BufferSlice(std::move(owner), 0, n);
  }

  // The one place a copy is explicit: materializes `bytes` into a fresh
  // shared region (callers counting bytes_copied do so at this call site).
  static BufferSlice CopyOf(std::span<const uint8_t> bytes) {
    return TakeOwnership(std::vector<uint8_t>(bytes.begin(), bytes.end()));
  }

  // Narrower view of the same region; shares ownership, never copies.
  // Clamped to this slice's bounds, so Sub(off, huge) yields the tail.
  BufferSlice Sub(size_t offset, size_t length) const {
    if (offset > length_) {
      offset = length_;
    }
    if (length > length_ - offset) {
      length = length_ - offset;
    }
    return BufferSlice(owner_, offset_ + offset, length);
  }

  const uint8_t* data() const { return owner_ ? owner_->data() + offset_ : nullptr; }
  size_t size() const { return length_; }
  bool empty() const { return length_ == 0; }
  std::span<const uint8_t> span() const { return {data(), length_}; }

  // True when two slices view the exact same region bytes (pointer identity,
  // not content) — used by tests to prove a path took no copy.
  bool SharesRegionWith(const BufferSlice& other) const {
    return owner_ != nullptr && owner_ == other.owner_;
  }

 private:
  BufferSlice(std::shared_ptr<const std::vector<uint8_t>> owner, size_t offset, size_t length)
      : owner_(std::move(owner)), offset_(offset), length_(length) {}

  std::shared_ptr<const std::vector<uint8_t>> owner_;
  size_t offset_ = 0;
  size_t length_ = 0;
};

}  // namespace dfs

#endif  // SRC_COMMON_BUFFER_H_

// Clang thread-safety-analysis (TSA) attribute macros.
//
// These move the Section-6 lock discipline into the type system: a mutex (or
// OrderedMutex) is declared a *capability*, data members name the capability
// that guards them with GUARDED_BY, and functions declare what they acquire,
// release, or require. Under `clang -Wthread-safety` (the DFS_THREAD_SAFETY
// CMake option turns it on with -Werror=thread-safety-analysis) a lock-
// discipline violation is a compile error on every build, instead of a
// runtime abort on the interleavings a test happens to execute.
//
// The macro set and semantics follow the Clang "Thread Safety Analysis"
// documentation (and abseil's base/thread_annotations.h). Under any compiler
// without the capability attribute — GCC in particular — every macro expands
// to nothing, so annotated code builds everywhere.
#ifndef SRC_COMMON_THREAD_ANNOTATIONS_H_
#define SRC_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DFS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DFS_THREAD_ANNOTATION
#define DFS_THREAD_ANNOTATION(x)  // no-op
#endif

// A type that can be held/released (a mutex). The string names the capability
// kind in diagnostics ("mutex", "ordered_mutex", ...).
#define CAPABILITY(x) DFS_THREAD_ANNOTATION(capability(x))

// A capability that also supports shared (reader) acquisition. Clang models
// shared-ness per-acquire, so this is the same attribute as CAPABILITY; the
// separate macro documents that the type offers ACQUIRE_SHARED paths.
#define SHARED_CAPABILITY(x) DFS_THREAD_ANNOTATION(capability(x))

// An RAII type whose constructor acquires a capability and whose destructor
// releases it (lock guards).
#define SCOPED_CAPABILITY DFS_THREAD_ANNOTATION(scoped_lockable)

// Data member: reads and writes require holding the named capability.
#define GUARDED_BY(x) DFS_THREAD_ANNOTATION(guarded_by(x))

// Pointer member: the *pointed-to* data is protected by the capability.
#define PT_GUARDED_BY(x) DFS_THREAD_ANNOTATION(pt_guarded_by(x))

// Function precondition: caller must hold the capabilities (still held on
// return). The "...Locked" private-helper convention maps onto this.
#define REQUIRES(...) DFS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) DFS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Function acquires/releases the capabilities itself (lock()/unlock()).
#define ACQUIRE(...) DFS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) DFS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) DFS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) DFS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

// try_lock(): acquires only when returning `b`.
#define TRY_ACQUIRE(b, ...) DFS_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

// Function must be called *without* the capabilities held (anti-deadlock for
// non-reentrant locks; e.g. public methods that take their own mutex).
#define EXCLUDES(...) DFS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Runtime assertion that the capability is held (tells the analysis so).
#define ASSERT_CAPABILITY(x) DFS_THREAD_ANNOTATION(assert_capability(x))

// Function returns a reference to the named capability (lock accessors).
#define RETURN_CAPABILITY(x) DFS_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for code the analysis cannot model (conditional acquisition,
// out-of-order release, locks handed across threads). Every use should carry
// a comment saying why.
#define NO_THREAD_SAFETY_ANALYSIS DFS_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // SRC_COMMON_THREAD_ANNOTATIONS_H_
